"""One process pool per invocation: a lazily-forked, reusable worker pool.

Every parallel consumer in the repository — fleet capacity searches, the
experiment sweep runner, the figure drivers' replay fans — historically
forked its own ``multiprocessing.Pool`` and tore it down again, so a sweep
of capacity searches paid a pool fork per search and a pooled sweep point
that itself received a worker budget could oversubscribe the host.
:class:`WorkerPool` replaces those ad-hoc pools with one shared runtime
primitive:

* **lazy** — the underlying pool is forked on the first parallel ``map``,
  never at construction, so a serial run (or one whose batches are all
  single-item) costs nothing;
* **reusable** — the pool persists across ``map`` calls until ``close``;
  a sweep of capacity searches shares one set of workers end to end;
* **nesting-safe** — a worker never re-forks: ``map`` issued from inside a
  pool worker (detected via the worker marker and the daemon flag) runs
  inline, so accidental nested parallelism degrades to serial instead of
  oversubscribing;
* **self-healing** — a worker death (OOM kill, segfault, stray
  ``SIGKILL``) breaks the underlying executor; the pool notices, retires
  the broken executor, and resubmits every task the crash took down on a
  fresh one with a bounded exponential backoff.  A task that keeps killing
  its workers is *quarantined* — its future fails with
  :class:`WorkerCrashError` after ``max_task_retries`` resubmissions — so
  one poison task can never hang ``as_completed`` or starve its batch.
  Crash/retry/quarantine counts are visible in :attr:`WorkerPool.stats`;
* **context-managed** — ``with WorkerPool(8) as pool: ...`` bounds the
  worker lifetime; :func:`shared_pool` extends that to a whole CLI
  invocation, and :func:`pool_scope` is how library code picks up the
  invocation's pool without threading it through every signature.

Work is dispatched either as a blocking batch (:meth:`WorkerPool.map`) or
completion-driven: :meth:`WorkerPool.submit` returns a :class:`Future` and
:func:`as_completed` yields futures in the order their results land, so a
consumer can react to each result immediately — refill a speculation
pipeline, tighten a search bracket — instead of synchronising on batch
boundaries.  ``map`` is submit-and-gather over the same machinery.

Per-task shared state (a simulator, a cluster) is expressed as a
:class:`TaskContext`: a builder plus its picklable payload, serialised once
and *built* once per worker (cached by token).  The serial path builds the
same context once locally, keeping the two paths decision-identical.

A serial pool resolves futures inline at submit time and never forks — the
cheapest way to see the submit/``as_completed`` surface end to end:

>>> with WorkerPool(max_workers=1) as pool:
...     futures = [pool.submit(abs, n) for n in (-2, 1, -3)]
...     [future.result() for future in futures]
...     pool.forked
[2, 1, 3]
False
>>> [f.result() for f in as_completed(futures)]  # already-done yield first
[2, 1, 3]

``pool_scope`` is how library code resolves "which pool should this run
on" — an explicit pool wins, ``jobs=1`` stays truly serial:

>>> with pool_scope(max_workers=1) as scoped:
...     scoped.max_workers
1
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.utils.rng import RngFactory

#: Set (in the child) by the pool initializer; belt to the daemon-flag braces.
_IN_WORKER = False

#: Pools actually forked by this process, cumulative.  Tests and the
#: one-pool-per-invocation guarantee read this through :func:`pool_forks`.
_FORK_COUNT = 0

#: Worker-side LRU of built task contexts, keyed by token.  Completion-driven
#: consumers (several concurrent capacity searches submitting into one pool)
#: interleave tasks from *all* live contexts round-robin — the worst access
#: pattern for an undersized LRU — so the bound is sized to hold a full
#: figure-grid's worth of concurrent searches (fig15's default grid is 12);
#: it exists only to keep long-lived workers from accumulating simulators
#: when thousands of distinct contexts stream through over a process's life.
_WORKER_CONTEXT_SLOTS = 16
_WORKER_CONTEXTS: "OrderedDict[Tuple[int, int], Any]" = OrderedDict()


def _worker_initializer() -> None:
    global _IN_WORKER
    _IN_WORKER = True
    if os.environ.get("REPRO_REMOTE_WORKER"):
        # Children of a remote worker shell must not outlive it: the shell
        # can be SIGKILL'd (a host failure in the distributed tests), which
        # skips every cleanup path, and an orphaned child would then block
        # on the executor's work queue forever.  PR_SET_PDEATHSIG is
        # cleared on fork, so each child arms it for itself.
        try:
            import ctypes

            libc = ctypes.CDLL(None, use_errno=True)
            libc.prctl(1, signal.SIGTERM)  # PR_SET_PDEATHSIG
        except (OSError, AttributeError, TypeError):
            pass  # non-Linux: orphans are reaped by the harness instead


def in_worker() -> bool:
    """True inside a pool worker process (where forking again is forbidden)."""
    return _IN_WORKER or multiprocessing.current_process().daemon


def pool_forks() -> int:
    """Number of process pools this process has forked so far."""
    return _FORK_COUNT


class TaskContext:
    """Shared setup for a batch of pool tasks, built once per worker.

    ``builder(payload)`` must be a module-level callable with a picklable
    payload; its return value is handed to the task function as the first
    argument.  The same :class:`TaskContext` instance can back many ``map``
    calls — workers cache the built value by the context's token, and the
    serial path caches it locally — so e.g. a capacity search builds its
    simulator once per worker no matter how many bisection rounds it runs.

    Because a ``multiprocessing.Pool`` cannot address individual workers,
    every task tuple carries the frozen payload bytes; serialisation cost is
    paid once (the bytes are reused) but pipe bandwidth is per item.  That
    is the price of sharing one long-lived pool across arbitrary consumers
    instead of re-forking with per-search initargs — and it is small: a
    warmed fleet search's payload measures ~40–190 KiB, a few MB per search
    against simulations that run orders of magnitude longer.

    ``value`` optionally seeds the *local* cache with an already-built
    object (e.g. the cluster the caller constructed anyway), which the
    serial path then reuses instead of building a duplicate.
    """

    _tokens = itertools.count()

    def __init__(
        self,
        builder: Callable[[Any], Any],
        payload: Any,
        value: Any = None,
    ) -> None:
        self._builder = builder
        self._payload = payload
        self._value = value
        self._built = value is not None
        # The (builder, payload) pair is pickled once and the bytes reused in
        # every task tuple, so a heavy payload (engines with dense latency
        # tables) costs one serialisation per context, not one per item.
        self._frozen: Optional[bytes] = None
        # Unique per (process, context); workers key their cache on it.
        self.token: Tuple[int, int] = (os.getpid(), next(TaskContext._tokens))

    def build(self) -> Any:
        """The built context value, constructing it on first use."""
        if not self._built:
            self._value = self._builder(self._payload)
            self._built = True
        return self._value

    def pack(
        self, fn: Callable[[Any, Any], Any], item: Any
    ) -> Tuple[Tuple[int, int], bytes, Callable[[Any, Any], Any], Any]:
        """The picklable task tuple shipped to workers for one ``item``."""
        if self._frozen is None:
            self._frozen = pickle.dumps(
                (self._builder, self._payload), protocol=pickle.HIGHEST_PROTOCOL
            )
        return (self.token, self._frozen, fn, item)


def _run_contextual_task(
    task: Tuple[Tuple[int, int], bytes, Callable[[Any, Any], Any], Any]
) -> Any:
    """Worker entry: build/reuse the task's context, then run it on the item."""
    token, frozen, fn, item = task
    cache = _WORKER_CONTEXTS
    if token in cache:
        cache.move_to_end(token)
        value = cache[token]
    else:
        builder, payload = pickle.loads(frozen)
        value = builder(payload)
        cache[token] = value
        if len(cache) > _WORKER_CONTEXT_SLOTS:
            cache.popitem(last=False)
    return fn(value, item)


# --------------------------------------------------------------------------- #
# Futures
# --------------------------------------------------------------------------- #

#: One condition serves every Future: completions are rare (one per simulated
#: workload) and the shared condition lets :func:`as_completed` wait on any
#: subset of futures without per-future plumbing.  Pool callbacks notify it
#: from the result-handler thread.
_COMPLETION = threading.Condition()


class Future:
    """Result placeholder for one task submitted to a :class:`WorkerPool`.

    Futures resolve either inline at submit time (serial pools, nested
    submits inside a worker) or from the pool's result-handler thread when
    the worker finishes.  ``cancel`` only *marks* the future: an in-flight
    process task cannot be revoked, so a cancelled future still resolves —
    callers use the mark to ignore speculation a tighter search bracket has
    invalidated, and the mark is bookkeeping for wasted-work accounting.
    """

    __slots__ = ("item", "_done", "_value", "_error", "_cancelled")

    def __init__(self, item: Any = None) -> None:
        self.item = item
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._cancelled = False

    def done(self) -> bool:
        """True once a result (or error) has landed."""
        return self._done

    def cancelled(self) -> bool:
        """True when the caller has marked this future's result as unwanted."""
        return self._cancelled

    def cancel(self) -> bool:
        """Mark the result as unwanted; returns False if it already landed."""
        if self._done:
            return False
        self._cancelled = True
        return True

    def _resolve(self, value: Any) -> None:
        with _COMPLETION:
            self._value = value
            self._done = True
            _COMPLETION.notify_all()

    def _reject(self, error: BaseException) -> None:
        with _COMPLETION:
            self._error = error
            self._done = True
            _COMPLETION.notify_all()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the task finishes; return its value or raise its error."""
        if not self._done:
            with _COMPLETION:
                _COMPLETION.wait_for(lambda: self._done, timeout)
        if not self._done:
            raise TimeoutError(f"task did not complete within {timeout} s")
        if self._error is not None:
            raise self._error
        return self._value

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        if self._cancelled:
            state += ", cancelled"
        return f"Future(item={self.item!r}, {state})"


def as_completed(futures: Iterable[Future]) -> Iterator[Future]:
    """Yield ``futures`` in completion order (already-done ones first).

    The completion-driven analogue of gathering a ``map``: consumers react
    to each result the moment it lands — advancing a bisection, refilling a
    speculation pipeline — while the remaining tasks keep running.
    Cancelled futures are still yielded when they resolve (a process task
    cannot be revoked); callers skip them by the mark.
    """
    pending = list(futures)
    while pending:
        ready = [future for future in pending if future._done]
        if not ready:
            with _COMPLETION:
                _COMPLETION.wait_for(
                    lambda: any(future._done for future in pending)
                )
            continue
        for future in ready:
            pending.remove(future)
            yield future


class WorkerCrashError(RuntimeError):
    """A task was abandoned because it kept crashing its worker process.

    Raised at ``Future.result()`` for a task that exhausted its crash-retry
    budget (``max_task_retries``): the pool treats it as *poison* and
    quarantines it rather than burning workers on it forever.  Tasks that
    merely *raise* are never wrapped in this — ordinary exceptions pass
    through untouched and unretried.
    """


class _TaskRecord:
    """Dispatch state for one submitted task, carried across crash retries."""

    __slots__ = (
        "future", "fn", "item", "context", "attempts", "generation", "seq"
    )

    def __init__(
        self, future: Future, fn: Callable[..., Any], item: Any,
        context: Optional[TaskContext], seq: int = 0,
    ) -> None:
        self.future = future
        self.fn = fn
        self.item = item
        self.context = context
        self.attempts = 0  # crash-triggered resubmissions so far
        self.generation = 0  # executor generation this dispatch targeted
        self.seq = seq  # submission ordinal; keys the backoff jitter stream


#: Ceiling on the crash-retry backoff so a run never stalls half a second
#: more than it must between executor generations.
_MAX_BACKOFF_S = 0.5


class WorkerPool:
    """A lazily-forked, reusable, nesting-safe, self-healing process pool.

    Parameters
    ----------
    max_workers:
        Worker processes to fork when parallel work first arrives; ``None``
        means one per host core.  A pool of one never forks — every ``map``
        runs inline — which is also the behaviour inside a pool worker
        regardless of ``max_workers``.
    max_task_retries:
        How many times one task may be resubmitted after a worker crash
        takes it down before the pool quarantines it (fails its future with
        :class:`WorkerCrashError`).  Crashes are *process deaths* — a task
        that raises an ordinary exception is never retried.
    retry_backoff_s:
        Base of the exponential backoff between crash resubmissions
        (doubled per attempt, capped at half a second) — enough for a
        transient killer (an OOM spike) to clear without turning recovery
        into a stall.
    backoff_seed:
        Root seed of the jitter applied to each backoff delay.  Jitter is
        derived per ``(task, attempt)`` from an :class:`RngFactory` child
        stream — never from wall clock or the global RNG — so two runs with
        the same seed and submission order back off identically.
    sleeper:
        How the pool actually waits out a backoff delay; defaults to
        ``time.sleep``.  Tests inject a recorder here to assert the exact
        delay sequence without slowing the suite down.
    """

    #: True for executors whose workers live on other hosts.  Budget
    #: planners (``runtime.capacity._parallel_budget``) clamp parallel width
    #: to the local core count — correct for forked pools, wrong for a fleet
    #: of remote machines — and skip that clamp when this is set.
    spans_hosts: bool = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_task_retries: int = 3,
        retry_backoff_s: float = 0.05,
        backoff_seed: int = 0,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self._max_workers = max_workers or os.cpu_count() or 1
        self._max_task_retries = max_task_retries
        self._retry_backoff_s = retry_backoff_s
        self._backoff_rng = RngFactory(backoff_seed)
        self._sleeper: Callable[[float], None] = (
            time.sleep if sleeper is None else sleeper
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        # Guards executor lifecycle + stats: dispatches race with the
        # executor's callback thread (where crashes are detected).
        self._lock = threading.Lock()
        # Bumped every time an executor is retired (crash or close); stale
        # crash reports from an already-replaced generation are ignored so
        # one worker death is counted — and heals the pool — exactly once.
        self._generation = 0
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "worker_crashes": 0,
            "retries": 0,
            "quarantined": 0,
        }

    @property
    def max_workers(self) -> int:
        """Worker budget this pool forks on first parallel use."""
        return self._max_workers

    @property
    def parallelism(self) -> int:
        """Effective width: 1 inside a worker (nested maps run inline)."""
        return 1 if in_worker() else self._max_workers

    @property
    def forked(self) -> bool:
        """Whether the underlying process pool has actually been forked."""
        return self._executor is not None

    @property
    def stats(self) -> Dict[str, int]:
        """Lifetime counters: submitted / completed / worker_crashes /
        retries / quarantined.  ``worker_crashes`` counts executor
        generations lost, ``retries`` crash-triggered resubmissions, and
        ``quarantined`` tasks abandoned with :class:`WorkerCrashError`.
        """
        with self._lock:
            return dict(self._stats)

    # ------------------------------------------------------------------ #

    def _dispatch(self, record: _TaskRecord) -> None:
        """Submit (or resubmit) one task onto the live executor."""
        try:
            with self._lock:
                if self._executor is None:
                    global _FORK_COUNT
                    _FORK_COUNT += 1
                    self._executor = ProcessPoolExecutor(
                        max_workers=self._max_workers,
                        mp_context=multiprocessing.get_context("fork"),
                        initializer=_worker_initializer,
                    )
                record.generation = self._generation
                if record.context is not None:
                    handle = self._executor.submit(
                        _run_contextual_task,
                        record.context.pack(record.fn, record.item),
                    )
                else:
                    handle = self._executor.submit(record.fn, record.item)
        except BrokenProcessPool:
            # The executor broke between a crash and its retirement; treat
            # this dispatch as crash contact so the budget stays bounded.
            self._crash_contact(record)
            return
        handle.add_done_callback(
            lambda done, record=record: self._task_done(record, done)
        )

    def _retire_broken(self, generation: int) -> None:
        """Drop the broken executor (once per generation); heal lazily."""
        with self._lock:
            if generation != self._generation or self._executor is None:
                return  # another task's crash report already retired it
            self._generation += 1
            self._stats["worker_crashes"] += 1
            executor, self._executor = self._executor, None
        # Outside the lock: reap what is reapable without waiting on it.
        executor.shutdown(wait=False, cancel_futures=True)

    def _backoff_delay(self, seq: int, attempt: int) -> float:
        """Deterministic jittered backoff before resubmission ``attempt``.

        Exponential in the attempt number, capped at ``_MAX_BACKOFF_S``, and
        jittered into ``[0.5, 1.0) × base`` by a seed-derived stream keyed on
        the task's submission ordinal — so concurrent victims of one crash
        spread out instead of thundering back in lockstep, yet the same run
        replayed with the same seed waits exactly the same delays.
        """
        if self._retry_backoff_s <= 0 or attempt <= 0:
            return 0.0
        base = min(self._retry_backoff_s * (2 ** (attempt - 1)), _MAX_BACKOFF_S)
        stream = self._backoff_rng.child(f"crash-backoff/{seq}/{attempt}")
        return base * (0.5 + 0.5 * float(stream.random()))

    def _crash_contact(self, record: _TaskRecord) -> None:
        """A worker crash took this task down: retry it or quarantine it."""
        self._retire_broken(record.generation)
        record.attempts += 1
        with self._lock:
            quarantine = record.attempts > self._max_task_retries
            self._stats["quarantined" if quarantine else "retries"] += 1
        if quarantine:
            record.future._reject(
                WorkerCrashError(
                    f"task {record.item!r} crashed its worker process "
                    f"{record.attempts} times; quarantined"
                )
            )
            return
        delay = self._backoff_delay(record.seq, record.attempts)
        if delay > 0:
            self._sleeper(delay)
        self._dispatch(record)

    def _task_done(self, record: _TaskRecord, handle: Any) -> None:
        """Executor callback: route one finished dispatch to its future."""
        try:
            value = handle.result()
        except (BrokenProcessPool, CancelledError):
            # The worker running (or queued to run) this task died.  Every
            # in-flight sibling lands here too — each is retried on the
            # replacement executor with its own budget.
            self._crash_contact(record)
            return
        except BaseException as error:  # the task raised: no retry
            record.future._reject(error)
            return
        with self._lock:
            self._stats["completed"] += 1
        record.future._resolve(value)

    def submit(
        self,
        fn: Callable[..., Any],
        item: Any,
        context: Optional[TaskContext] = None,
    ) -> Future:
        """Dispatch one task and return a :class:`Future` for its result.

        On a serial pool — or nested inside a pool worker, where forking is
        forbidden — the task runs inline *now* and the returned future is
        already resolved, so completion-driven consumers degrade to exact
        serial execution with no special-casing.  With a ``context``, ``fn``
        receives ``(context_value, item)``; without one, ``(item)``.

        A parallel task whose worker process *dies* (rather than raises) is
        transparently resubmitted up to ``max_task_retries`` times on a
        fresh executor; past that budget its future fails with
        :class:`WorkerCrashError` instead of hanging.
        """
        future = Future(item)
        with self._lock:
            self._stats["submitted"] += 1
            seq = self._stats["submitted"]
        if self.parallelism <= 1:
            try:
                if context is not None:
                    future._resolve(fn(context.build(), item))
                else:
                    future._resolve(fn(item))
            except BaseException as error:  # delivered at .result()
                future._reject(error)
            else:
                with self._lock:
                    self._stats["completed"] += 1
            return future
        self._dispatch(_TaskRecord(future, fn, item, context, seq=seq))
        return future

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        context: Optional[TaskContext] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item, forking the pool only when it pays.

        Submit-and-gather over :meth:`submit`: runs inline (deterministically,
        in order) when the pool is serial, the call is nested inside a
        worker, or the batch has at most one item.  With a ``context``,
        ``fn`` receives ``(context_value, item)``; without one it receives
        ``(item)`` — in both cases ``fn`` and the items must be picklable
        for the parallel path.
        """
        items = list(items)
        serial = self.parallelism <= 1 or len(items) <= 1
        if serial:
            if context is not None:
                value = context.build()
                return [fn(value, item) for item in items]
            return [fn(item) for item in items]
        futures = [self.submit(fn, item, context=context) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Tear the forked pool down (a later ``map`` would fork afresh).

        Blocks until in-flight tasks drain — consumers gather results
        before closing, so in practice this returns immediately.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            if executor is not None:
                self._generation += 1
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "forked" if self.forked else "lazy"
        return f"WorkerPool(max_workers={self._max_workers}, {state})"


# --------------------------------------------------------------------------- #
# Invocation-wide shared pool
# --------------------------------------------------------------------------- #

#: The invocation's shared pool, owned by the outermost :func:`shared_pool`.
_ACTIVE: Optional[WorkerPool] = None

#: Serial singleton yielded by :func:`pool_scope` when the caller asked for
#: one worker: it never forks, so ``jobs=1`` stays a true serial run even
#: when an invocation-wide pool is active.
_SERIAL_POOL = WorkerPool(max_workers=1)


def active_pool() -> Optional[WorkerPool]:
    """The invocation's shared pool, or None outside a :func:`shared_pool`."""
    return _ACTIVE


@contextmanager
def shared_pool(
    max_workers: Optional[int] = None, pool: Optional[WorkerPool] = None
) -> Iterator[WorkerPool]:
    """Own the invocation-wide shared pool for the duration of the block.

    Entry points (the experiments CLI, benchmark harnesses) wrap their whole
    run in this; every :func:`pool_scope` below then resolves to the same
    pool, so the invocation forks at most one pool no matter how many sweeps
    and capacity searches it performs.  Nested calls share the outer pool
    (the outer owner closes it); the pool itself still forks lazily, so a
    run whose work turns out serial never forks at all.

    An explicit ``pool`` installs a pre-built executor — e.g. a
    :class:`repro.runtime.remote.RemoteWorkerPool` dialled up by the CLI —
    as the invocation's shared pool; ownership transfers, so this context
    closes it on exit like a pool it forked itself.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    own = pool if pool is not None else WorkerPool(max_workers)
    _ACTIVE = own
    try:
        yield own
    finally:
        _ACTIVE = None
        own.close()


@contextmanager
def pool_scope(
    max_workers: Optional[int] = None, pool: Optional[WorkerPool] = None
) -> Iterator[WorkerPool]:
    """Resolve the pool a parallel consumer should run on.

    Preference order: an explicitly provided ``pool``; the serial singleton
    when the caller asked for at most one worker (``jobs=1`` must stay
    serial even under an active shared pool); the invocation's shared pool;
    else a private single-use :class:`WorkerPool` closed on exit.  Library
    code (capacity searches, sweep runners, replay fans) funnels every
    parallel branch through this, which is what makes "one pool per CLI
    invocation" a structural property rather than a convention.
    """
    if pool is not None:
        yield pool
        return
    if max_workers is not None and max_workers <= 1:
        yield _SERIAL_POOL
        return
    active = active_pool()
    if active is not None:
        yield active
        return
    with WorkerPool(max_workers) as own:
        yield own
