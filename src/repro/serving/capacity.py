"""Latency-bounded capacity search.

The paper's throughput metric is the largest sustainable query arrival rate
(QPS) whose measured p95 latency stays within the SLA target.
:func:`find_max_qps` estimates an upper bound from the engines' raw
throughput, then bisects over the offered load, running the serving simulator
at each candidate rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import QuerySizeDistribution
from repro.serving.simulator import ServingConfig, ServingSimulator, SimulationResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of one capacity search.

    ``result`` is the simulation outcome at the best sustainable rate — a
    :class:`SimulationResult` for single-server searches, or a
    :class:`~repro.serving.cluster.ClusterSimulationResult` for fleet
    searches (both expose the ``acceptable`` criterion the search uses).
    """

    max_qps: float
    sla_latency_s: float
    result: Optional[SimulationResult]

    @property
    def feasible(self) -> bool:
        """False when even a near-zero load violates the SLA."""
        return self.result is not None


def estimate_upper_bound_qps(
    engines: EnginePair,
    config: ServingConfig,
    mean_query_size: float,
    large_query_fraction: float = 0.0,
    mean_large_query_size: float = 0.0,
) -> float:
    """Optimistic throughput bound used to bracket the bisection search.

    The CPU bound assumes all cores stay busy at the configured batch size;
    the accelerator bound (when offloading is enabled) assumes it continuously
    processes queries of the average offloaded size.
    """
    check_positive("mean_query_size", mean_query_size)
    cores = config.num_cores if config.num_cores else engines.cpu.platform.num_cores
    batch = config.batch_size
    core_items_per_s = batch / engines.cpu.request_latency_s(batch, cores)
    cpu_items_per_s = cores * core_items_per_s

    gpu_items_per_s = 0.0
    if (
        config.offload_threshold is not None
        and engines.has_accelerator
        and large_query_fraction > 0.0
        and mean_large_query_size > 0.0
    ):
        gpu_items_per_s = mean_large_query_size / engines.gpu.query_latency_s(
            int(mean_large_query_size)
        )

    total_items_per_s = cpu_items_per_s + gpu_items_per_s
    return total_items_per_s / mean_query_size


def measurement_queries(
    rate_qps: float,
    sla_latency_s: float,
    min_queries: int,
    max_queries: int,
    sla_window_factor: float = 5.0,
) -> int:
    """Number of queries needed for a trustworthy tail-latency measurement.

    The arrival window must span several SLA periods, otherwise an overloaded
    configuration's queue does not have time to grow past the target and the
    run looks (wrongly) healthy.  The count is clamped so that the very high
    QPS operating points of embedding-dominated models stay affordable to
    simulate.
    """
    check_positive("rate_qps", rate_qps)
    needed = int(rate_qps * sla_window_factor * sla_latency_s)
    return max(min_queries, min(max_queries, needed))


def offload_size_stats(
    sizes: QuerySizeDistribution, threshold: Optional[int]
) -> tuple:
    """(fraction, mean size) of queries above an offload threshold.

    Returns ``(0.0, 0.0)`` when offloading is disabled.  Used to feed the
    accelerator term of :func:`estimate_upper_bound_qps`.
    """
    if threshold is None:
        return 0.0, 0.0
    samples = sizes.sample(4000, rng=11)
    above = samples[samples > threshold]
    large_fraction = len(above) / len(samples)
    mean_large = float(above.mean()) if len(above) else 0.0
    return large_fraction, mean_large


def bisect_max_qps(
    evaluate: Callable[[float], SimulationResult],
    upper_qps: float,
    sla_latency_s: float,
    iterations: int,
) -> CapacityResult:
    """Bisection search over offered load for the largest acceptable rate.

    ``evaluate(rate_qps)`` must run the system at that offered load and
    return a result exposing ``acceptable(sla_latency_s)`` (any of the
    simulation result types qualifies).  ``upper_qps`` is an optimistic
    starting bracket; if the system still meets the SLA there, the bracket is
    raised before bisecting.
    """
    check_positive("sla_latency_s", sla_latency_s)
    check_positive("iterations", iterations)
    check_positive("upper_qps", upper_qps)

    upper = upper_qps
    # Make sure the bracket actually contains the SLA boundary: if the upper
    # bound still meets the SLA, raise it.
    for _ in range(3):
        at_upper = evaluate(upper)
        if not at_upper.acceptable(sla_latency_s):
            break
        upper *= 1.6
    else:
        return CapacityResult(max_qps=upper, sla_latency_s=sla_latency_s, result=at_upper)

    lower = upper / 64.0
    at_lower = evaluate(lower)
    if not at_lower.acceptable(sla_latency_s):
        # Even a lightly loaded system misses the target: check near-zero load.
        trickle = max(lower / 16.0, 1e-3)
        at_trickle = evaluate(trickle)
        if not at_trickle.acceptable(sla_latency_s):
            return CapacityResult(max_qps=0.0, sla_latency_s=sla_latency_s, result=None)
        lower, at_lower = trickle, at_trickle

    best_rate, best_result = lower, at_lower
    for _ in range(iterations):
        middle = 0.5 * (lower + upper)
        outcome = evaluate(middle)
        if outcome.acceptable(sla_latency_s):
            lower = middle
            best_rate, best_result = middle, outcome
        else:
            upper = middle
    return CapacityResult(
        max_qps=best_rate, sla_latency_s=sla_latency_s, result=best_result
    )


def find_max_qps(
    engines: EnginePair,
    config: ServingConfig,
    sla_latency_s: float,
    load_generator: LoadGenerator,
    num_queries: int = 800,
    iterations: int = 7,
    headroom: float = 1.3,
    max_queries: int = 8000,
) -> CapacityResult:
    """Bisection search for the maximum QPS meeting the p95 SLA.

    ``load_generator`` provides the arrival process and query-size
    distribution; its configured rate is ignored (the search sets the rate).
    A rate only counts as sustainable when the run both meets the p95 target
    and shows no sign of an unbounded backlog (``SimulationResult.acceptable``).
    Returns max_qps=0 and result=None when the SLA cannot be met at any load
    (e.g. a single large query already exceeds the target).
    """
    check_positive("sla_latency_s", sla_latency_s)
    check_positive("num_queries", num_queries)

    sizes: QuerySizeDistribution = load_generator.sizes
    mean_size = sizes.mean()
    large_fraction, mean_large = offload_size_stats(sizes, config.offload_threshold)

    upper = headroom * estimate_upper_bound_qps(
        engines, config, mean_size, large_fraction, mean_large
    )
    simulator = ServingSimulator(engines, config)

    def evaluate(rate_qps: float) -> SimulationResult:
        generator = load_generator.with_rate(rate_qps)
        count = measurement_queries(rate_qps, sla_latency_s, num_queries, max_queries)
        return simulator.run(generator.generate(count))

    return bisect_max_qps(evaluate, upper, sla_latency_s, iterations)
