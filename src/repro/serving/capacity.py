"""Latency-bounded capacity search.

The paper's throughput metric is the largest sustainable query arrival rate
(QPS) whose measured p95 latency stays within the SLA target.
:func:`find_max_qps` estimates an upper bound from the engines' raw
throughput, then bisects over the offered load, running the serving simulator
at each candidate rate.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import QuerySizeDistribution
from repro.serving.simulator import ServingConfig, SimulationResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of one capacity search.

    ``result`` is the simulation outcome at the best sustainable rate — a
    :class:`SimulationResult` for single-server searches, or a
    :class:`~repro.serving.cluster.ClusterSimulationResult` for fleet
    searches (both expose the ``acceptable`` criterion the search uses).
    """

    max_qps: float
    sla_latency_s: float
    result: Optional[SimulationResult]

    @property
    def feasible(self) -> bool:
        """False when even a near-zero load violates the SLA."""
        return self.result is not None


def estimate_upper_bound_qps(
    engines: EnginePair,
    config: ServingConfig,
    mean_query_size: float,
    large_query_fraction: float = 0.0,
    mean_large_query_size: float = 0.0,
) -> float:
    """Optimistic throughput bound used to bracket the bisection search.

    The CPU bound assumes all cores stay busy at the configured batch size;
    the accelerator bound (when offloading is enabled) assumes it continuously
    processes queries of the average offloaded size.
    """
    check_positive("mean_query_size", mean_query_size)
    cores = config.num_cores if config.num_cores else engines.cpu.platform.num_cores
    batch = config.batch_size
    core_items_per_s = batch / engines.cpu.request_latency_s(batch, cores)
    cpu_items_per_s = cores * core_items_per_s

    gpu_items_per_s = 0.0
    if (
        config.offload_threshold is not None
        and engines.has_accelerator
        and large_query_fraction > 0.0
        and mean_large_query_size > 0.0
    ):
        gpu_items_per_s = mean_large_query_size / engines.gpu.query_latency_s(
            int(mean_large_query_size)
        )

    total_items_per_s = cpu_items_per_s + gpu_items_per_s
    return total_items_per_s / mean_query_size


def measurement_queries(
    rate_qps: float,
    sla_latency_s: float,
    min_queries: int,
    max_queries: int,
    sla_window_factor: float = 5.0,
) -> int:
    """Number of queries needed for a trustworthy tail-latency measurement.

    The arrival window must span several SLA periods, otherwise an overloaded
    configuration's queue does not have time to grow past the target and the
    run looks (wrongly) healthy.  The count is clamped so that the very high
    QPS operating points of embedding-dominated models stay affordable to
    simulate.
    """
    check_positive("rate_qps", rate_qps)
    needed = int(rate_qps * sla_window_factor * sla_latency_s)
    return max(min_queries, min(max_queries, needed))


def offload_size_stats(
    sizes: QuerySizeDistribution, threshold: Optional[int]
) -> tuple:
    """(fraction, mean size) of queries above an offload threshold.

    Returns ``(0.0, 0.0)`` when offloading is disabled.  Used to feed the
    accelerator term of :func:`estimate_upper_bound_qps`.
    """
    if threshold is None:
        return 0.0, 0.0
    samples = sizes.sample(4000, rng=11)
    above = samples[samples > threshold]
    large_fraction = len(above) / len(samples)
    mean_large = float(above.mean()) if len(above) else 0.0
    return large_fraction, mean_large


def bisect_max_qps(
    evaluate: Callable[[float], SimulationResult],
    upper_qps: float,
    sla_latency_s: float,
    iterations: int,
) -> CapacityResult:
    """Bisection search over offered load for the largest acceptable rate.

    ``evaluate(rate_qps)`` must run the system at that offered load and
    return a result exposing ``acceptable(sla_latency_s)`` (any of the
    simulation result types qualifies).  ``upper_qps`` is an optimistic
    starting bracket; if the system still meets the SLA there, the bracket is
    raised before bisecting.
    """
    check_positive("sla_latency_s", sla_latency_s)
    check_positive("iterations", iterations)
    check_positive("upper_qps", upper_qps)

    upper = upper_qps
    # Make sure the bracket actually contains the SLA boundary: if the upper
    # bound still meets the SLA, raise it.
    for _ in range(3):
        at_upper = evaluate(upper)
        if not at_upper.acceptable(sla_latency_s):
            break
        upper *= 1.6
    else:
        # Even the top of the raised bracket sustains the SLA.  Measure at
        # the rate actually reported, so ``result`` always corresponds to
        # ``max_qps`` (and a warm-start replay of this search — one
        # evaluation at the recorded rate — reproduces it bit-identically).
        return CapacityResult(
            max_qps=upper, sla_latency_s=sla_latency_s, result=evaluate(upper)
        )

    lower = upper / 64.0
    at_lower = evaluate(lower)
    if not at_lower.acceptable(sla_latency_s):
        # Even a lightly loaded system misses the target: check near-zero load.
        trickle = max(lower / 16.0, 1e-3)
        at_trickle = evaluate(trickle)
        if not at_trickle.acceptable(sla_latency_s):
            return CapacityResult(max_qps=0.0, sla_latency_s=sla_latency_s, result=None)
        lower, at_lower = trickle, at_trickle

    best_rate, best_result = lower, at_lower
    for _ in range(iterations):
        middle = 0.5 * (lower + upper)
        outcome = evaluate(middle)
        if outcome.acceptable(sla_latency_s):
            lower = middle
            best_rate, best_result = middle, outcome
        else:
            upper = middle
    return CapacityResult(
        max_qps=best_rate, sla_latency_s=sla_latency_s, result=best_result
    )


def bisect_max_qps_batched(
    evaluate_batch: Callable[[Sequence[float]], List[SimulationResult]],
    upper_qps: float,
    sla_latency_s: float,
    iterations: int,
    lookahead: int = 2,
) -> CapacityResult:
    """Speculatively parallel bisection, decision-identical to :func:`bisect_max_qps`.

    ``evaluate_batch(rates)`` evaluates several offered loads at once (e.g.
    over a process pool) and returns their results in order.  The search
    walks exactly the decision tree of the serial bisection: each batch
    contains every rate the next ``lookahead`` serial rounds *could* evaluate
    (``2**lookahead - 1`` midpoints), the bracket-raise phase evaluates its
    up-to-three candidates in one batch, and the lower-bound probe evaluates
    the trickle fallback speculatively.  Because evaluations are
    deterministic functions of the rate, the returned ``CapacityResult`` is
    identical to the serial search's — speculation only buys wall-clock time,
    at the cost of some discarded evaluations.
    """
    check_positive("sla_latency_s", sla_latency_s)
    check_positive("iterations", iterations)
    check_positive("upper_qps", upper_qps)
    if lookahead < 1:
        raise ValueError(f"lookahead must be >= 1, got {lookahead}")

    # Phase 1 — bracket raise: serial evaluates at most three uppers.
    upper_candidates = []
    value = upper_qps
    for _ in range(3):
        upper_candidates.append(value)
        value *= 1.6
    upper_results = evaluate_batch(upper_candidates)
    upper = upper_qps
    bracketed = False
    for candidate, at_upper in zip(upper_candidates, upper_results):
        if not at_upper.acceptable(sla_latency_s):
            upper = candidate
            bracketed = True
            break
        upper = candidate * 1.6
    if not bracketed:
        # Mirror of the serial unbracketed exit: measure at the reported
        # rate so the result matches max_qps (and warm replay) exactly.
        return CapacityResult(
            max_qps=upper,
            sla_latency_s=sla_latency_s,
            result=evaluate_batch([upper])[0],
        )

    # Phase 2 — lower bound, with the near-zero trickle probe speculated.
    lower = upper / 64.0
    trickle = max(lower / 16.0, 1e-3)
    at_lower, at_trickle = evaluate_batch([lower, trickle])
    if not at_lower.acceptable(sla_latency_s):
        if not at_trickle.acceptable(sla_latency_s):
            return CapacityResult(max_qps=0.0, sla_latency_s=sla_latency_s, result=None)
        lower, at_lower = trickle, at_trickle

    # Phase 3 — bisection, `lookahead` serial rounds per batch.
    best_rate, best_result = lower, at_lower
    remaining = iterations
    while remaining > 0:
        depth = min(lookahead, remaining)
        candidates: List[float] = []

        def collect(low: float, high: float, levels: int) -> None:
            if not levels:
                return
            middle = 0.5 * (low + high)
            candidates.append(middle)
            collect(middle, high, levels - 1)
            collect(low, middle, levels - 1)

        collect(lower, upper, depth)
        outcomes = dict(zip(candidates, evaluate_batch(candidates)))
        for _ in range(depth):
            middle = 0.5 * (lower + upper)
            outcome = outcomes[middle]
            if outcome.acceptable(sla_latency_s):
                lower = middle
                best_rate, best_result = middle, outcome
            else:
                upper = middle
        remaining -= depth
    return CapacityResult(
        max_qps=best_rate, sla_latency_s=sla_latency_s, result=best_result
    )


class CapacityCache:
    """On-disk warm-start store for capacity searches.

    Maps a canonical search signature to the ``max_qps`` a previous search
    found, so reruns (and sweeps sharing a cache directory) can start the
    bisection from a bracket that is already close to the answer instead of
    the optimistic analytic upper bound.  Entries are one JSON file per
    signature, named by its SHA-256 digest — shareable and prunable with
    ordinary file tools, like the sweep runner's result cache.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self._dir = Path(cache_dir)

    @property
    def cache_dir(self) -> Path:
        """Directory holding the warm-start entries."""
        return self._dir

    @staticmethod
    def digest(signature: Dict[str, Any]) -> str:
        """Stable hex digest of a canonical (JSON-serialisable) signature."""
        payload = json.dumps(signature, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, signature: Dict[str, Any]) -> Path:
        return self._dir / f"capacity-{self.digest(signature)}.json"

    def load(self, signature: Dict[str, Any]) -> Optional[float]:
        """Return the cached max QPS for ``signature``, or None."""
        path = self._path(signature)
        try:
            payload = json.loads(path.read_text())
            max_qps = float(payload["max_qps"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None  # missing/corrupt/foreign-shaped entries are misses
        return max_qps if max_qps > 0 else None

    def store(self, signature: Dict[str, Any], max_qps: float) -> None:
        """Record ``max_qps`` for ``signature`` (atomic write-then-rename)."""
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._path(signature)
        entry = {"signature": signature, "max_qps": max_qps}
        scratch = path.with_suffix(f".tmp-{os.getpid()}")
        scratch.write_text(json.dumps(entry, sort_keys=True))
        scratch.replace(path)


def find_max_qps(
    engines: EnginePair,
    config: ServingConfig,
    sla_latency_s: float,
    load_generator: LoadGenerator,
    num_queries: int = 800,
    iterations: int = 7,
    headroom: float = 1.3,
    max_queries: int = 8000,
    jobs: int = 1,
    warm_start_cache: Union["CapacityCache", str, Path, None] = None,
    pool: Optional[Any] = None,
) -> CapacityResult:
    """Bisection search for the maximum QPS meeting the p95 SLA.

    ``load_generator`` provides the arrival process and query-size
    distribution; its configured rate is ignored (the search sets the rate).
    A rate only counts as sustainable when the run both meets the p95 target
    and shows no sign of an unbounded backlog (``SimulationResult.acceptable``).
    Returns max_qps=0 and result=None when the SLA cannot be met at any load
    (e.g. a single large query already exceeds the target).

    A thin wrapper over :class:`repro.runtime.capacity.CapacitySearch`:
    ``jobs > 1`` evaluates each bisection round's speculative candidates on
    the invocation's shared worker pool (or ``pool``, if given), and
    ``warm_start_cache`` replays a previously recorded identical search
    after one verifying evaluation.  Both paths return results
    **bit-identical** to the serial cold search.
    """
    from repro.runtime.capacity import CapacitySearch

    return CapacitySearch.for_server(
        engines,
        config,
        sla_latency_s,
        load_generator,
        num_queries=num_queries,
        iterations=iterations,
        headroom=headroom,
        max_queries=max_queries,
    ).run(jobs=jobs, warm_start_cache=warm_start_cache, pool=pool)
