"""Latency-bounded capacity search.

The paper's throughput metric is the largest sustainable query arrival rate
(QPS) whose measured p95 latency stays within the SLA target.
:func:`find_max_qps` estimates an upper bound from the engines' raw
throughput, then bisects over the offered load, running the serving simulator
at each candidate rate.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import QuerySizeDistribution
from repro.serving.simulator import ServingConfig, SimulationResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of one capacity search.

    ``result`` is the simulation outcome at the best sustainable rate — a
    :class:`SimulationResult` for single-server searches, or a
    :class:`~repro.serving.cluster.ClusterSimulationResult` for fleet
    searches (both expose the ``acceptable`` criterion the search uses).

    ``evaluations`` counts the simulator evaluations performed on behalf of
    this search: the rates the decision tree consumed plus any speculative
    evaluations a parallel search dispatched (so it can exceed the serial
    count), or 1 for a warm-start replay and 0 for an in-memory memo hit.
    It is observability metadata — two results that differ only in
    ``evaluations`` describe the same capacity.
    """

    max_qps: float
    sla_latency_s: float
    result: Optional[SimulationResult]
    evaluations: int = 0

    @property
    def feasible(self) -> bool:
        """False when even a near-zero load violates the SLA."""
        return self.result is not None


def estimate_upper_bound_qps(
    engines: EnginePair,
    config: ServingConfig,
    mean_query_size: float,
    large_query_fraction: float = 0.0,
    mean_large_query_size: float = 0.0,
) -> float:
    """Optimistic throughput bound used to bracket the bisection search.

    The CPU bound assumes all cores stay busy at the configured batch size;
    the accelerator bound (when offloading is enabled) assumes it continuously
    processes queries of the average offloaded size.
    """
    check_positive("mean_query_size", mean_query_size)
    cores = config.num_cores if config.num_cores else engines.cpu.platform.num_cores
    batch = config.batch_size
    core_items_per_s = batch / engines.cpu.request_latency_s(batch, cores)
    cpu_items_per_s = cores * core_items_per_s

    gpu_items_per_s = 0.0
    if (
        config.offload_threshold is not None
        and engines.has_accelerator
        and large_query_fraction > 0.0
        and mean_large_query_size > 0.0
    ):
        gpu_items_per_s = mean_large_query_size / engines.gpu.query_latency_s(
            int(mean_large_query_size)
        )

    total_items_per_s = cpu_items_per_s + gpu_items_per_s
    return total_items_per_s / mean_query_size


def measurement_queries(
    rate_qps: float,
    sla_latency_s: float,
    min_queries: int,
    max_queries: int,
    sla_window_factor: float = 5.0,
) -> int:
    """Number of queries needed for a trustworthy tail-latency measurement.

    The arrival window must span several SLA periods, otherwise an overloaded
    configuration's queue does not have time to grow past the target and the
    run looks (wrongly) healthy.  The count is clamped so that the very high
    QPS operating points of embedding-dominated models stay affordable to
    simulate.
    """
    check_positive("rate_qps", rate_qps)
    needed = int(rate_qps * sla_window_factor * sla_latency_s)
    return max(min_queries, min(max_queries, needed))


def offload_size_stats(
    sizes: QuerySizeDistribution, threshold: Optional[int]
) -> tuple:
    """(fraction, mean size) of queries above an offload threshold.

    Returns ``(0.0, 0.0)`` when offloading is disabled.  Used to feed the
    accelerator term of :func:`estimate_upper_bound_qps`.
    """
    if threshold is None:
        return 0.0, 0.0
    samples = sizes.sample(4000, rng=11)
    above = samples[samples > threshold]
    large_fraction = len(above) / len(samples)
    mean_large = float(above.mean()) if len(above) else 0.0
    return large_fraction, mean_large


def bisect_max_qps(
    evaluate: Callable[[float], SimulationResult],
    upper_qps: float,
    sla_latency_s: float,
    iterations: int,
) -> CapacityResult:
    """Bisection search over offered load for the largest acceptable rate.

    ``evaluate(rate_qps)`` must run the system at that offered load and
    return a result exposing ``acceptable(sla_latency_s)`` (any of the
    simulation result types qualifies).  ``upper_qps`` is an optimistic
    starting bracket; if the system still meets the SLA there, the bracket is
    raised before bisecting.
    """
    check_positive("sla_latency_s", sla_latency_s)
    check_positive("iterations", iterations)
    check_positive("upper_qps", upper_qps)
    evals = 0

    upper = upper_qps
    # Make sure the bracket actually contains the SLA boundary: if the upper
    # bound still meets the SLA, raise it.
    for _ in range(3):
        at_upper = evaluate(upper)
        evals += 1
        if not at_upper.acceptable(sla_latency_s):
            break
        upper *= 1.6
    else:
        # Even the top of the raised bracket sustains the SLA.  Measure at
        # the rate actually reported, so ``result`` always corresponds to
        # ``max_qps`` (and a warm-start replay of this search — one
        # evaluation at the recorded rate — reproduces it bit-identically).
        return CapacityResult(
            max_qps=upper,
            sla_latency_s=sla_latency_s,
            result=evaluate(upper),
            evaluations=evals + 1,
        )

    lower = upper / 64.0
    at_lower = evaluate(lower)
    evals += 1
    if not at_lower.acceptable(sla_latency_s):
        # Even a lightly loaded system misses the target: check near-zero load.
        trickle = max(lower / 16.0, 1e-3)
        at_trickle = evaluate(trickle)
        evals += 1
        if not at_trickle.acceptable(sla_latency_s):
            return CapacityResult(
                max_qps=0.0, sla_latency_s=sla_latency_s, result=None,
                evaluations=evals,
            )
        lower, at_lower = trickle, at_trickle

    best_rate, best_result = lower, at_lower
    for _ in range(iterations):
        middle = 0.5 * (lower + upper)
        outcome = evaluate(middle)
        evals += 1
        if outcome.acceptable(sla_latency_s):
            lower = middle
            best_rate, best_result = middle, outcome
        else:
            upper = middle
    return CapacityResult(
        max_qps=best_rate, sla_latency_s=sla_latency_s, result=best_result,
        evaluations=evals,
    )


class BisectionMachine:
    """The capacity bisection's decision tree as an explicit state machine.

    :func:`bisect_max_qps` walks one path through a binary decision tree:
    every evaluation's accept/reject verdict picks the next rate.  This
    class factors that tree out of the execution loop — :meth:`next_rate`
    is the rate the search needs now, :meth:`advance` consumes its verdict —
    so the *same* decisions can be driven serially, speculatively (cloning
    the machine down both branches enumerates every rate the next few
    verdicts could require, see :func:`speculative_rates`), or
    completion-driven over a pool of in-flight evaluations.  A cold machine
    consumes exactly the rate sequence of :func:`bisect_max_qps` (property
    tested), so however the evaluations are scheduled, the final bracket and
    result are those of the serial search.

    :meth:`hinted` builds a machine whose *initial bracket only* is
    tightened around a near-miss warm-start hint: it probes
    ``hint * margin`` (expected over capacity) and ``hint`` (expected
    under), falling back to the cold phases whenever a probe disagrees, and
    ``stop_width`` ends the bisection once the bracket is at least as tight
    as the cold search's final bracket would be.  Hinted searches converge
    to the same capacity within that bracket width in fewer evaluations —
    they are *not* bit-identical to the cold search, which is why hints are
    opt-in at the search layer.
    """

    __slots__ = (
        "phase",
        "upper",
        "lower",
        "hint",
        "cold_upper",
        "known_lower",
        "raise_attempts",
        "best_rate",
        "remaining",
        "iterations",
        "stop_width",
        "trickle_rate",
        "max_qps",
        "result_rate",
    )

    def __init__(
        self, upper_qps: float, iterations: int, stop_width: float = 0.0
    ) -> None:
        check_positive("upper_qps", upper_qps)
        check_positive("iterations", iterations)
        if stop_width < 0:
            raise ValueError(f"stop_width must be >= 0, got {stop_width}")
        self.phase = "raise"
        self.upper = upper_qps
        self.lower = 0.0
        self.hint = 0.0
        self.cold_upper = upper_qps
        self.known_lower: Optional[float] = None
        self.raise_attempts = 0
        self.best_rate: Optional[float] = None
        self.remaining = 0
        self.iterations = iterations
        self.stop_width = stop_width
        self.trickle_rate = 0.0
        self.max_qps: Optional[float] = None
        self.result_rate: Optional[float] = None

    @classmethod
    def hinted(
        cls,
        hint_qps: float,
        upper_qps: float,
        iterations: int,
        margin: float = 1.15,
        stop_width: float = 0.0,
    ) -> "BisectionMachine":
        """A machine whose initial bracket is tightened around ``hint_qps``.

        Falls back to a cold machine when the hint cannot tighten anything
        (non-positive, or so close to the default upper bound that the
        probes would not help).  ``cold_upper`` is remembered: when the
        ``hint * margin`` probe unexpectedly sustains the SLA, the machine
        recovers by probing the cold upper bound directly — bracketing in
        one step whenever the cold bound would have, instead of crawling up
        in ×1.6 raises from the hinted top.
        """
        machine = cls(upper_qps, iterations, stop_width=stop_width)
        if hint_qps <= 0 or margin <= 1.0 or hint_qps * margin >= upper_qps:
            return machine
        machine.cold_upper = upper_qps
        machine.phase = "hint-upper"
        machine.upper = hint_qps * margin
        machine.hint = hint_qps
        return machine

    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """True once the search has concluded (``max_qps`` is set)."""
        return self.phase == "done"

    @property
    def infeasible(self) -> bool:
        """True when the search concluded that no load meets the SLA."""
        return self.done and self.result_rate is None

    def clone(self) -> "BisectionMachine":
        """An independent copy (used to enumerate speculative branches)."""
        copy = BisectionMachine.__new__(BisectionMachine)
        for slot in BisectionMachine.__slots__:
            setattr(copy, slot, getattr(self, slot))
        return copy

    def next_rate(self) -> Optional[float]:
        """The offered load whose verdict the decision tree needs next."""
        phase = self.phase
        if phase in ("raise", "unbracketed", "hint-upper"):
            return self.upper
        if phase == "hint-lower":
            return self.hint
        if phase == "lower":
            return self.lower
        if phase == "trickle":
            return self.trickle_rate
        if phase == "bisect":
            return 0.5 * (self.lower + self.upper)
        return None  # done

    def advance(self, acceptable: bool) -> None:
        """Consume the verdict of :meth:`next_rate`'s evaluation."""
        phase = self.phase
        if phase == "raise":
            if acceptable:
                self.raise_attempts += 1
                self.upper *= 1.6
                if self.raise_attempts >= 3:
                    self.phase = "unbracketed"
            elif self.known_lower is not None:
                # A hinted probe already established an acceptable rate, so
                # the cold lower-bound probe is redundant.
                self.lower = self.known_lower
                self._enter_bisect()
            else:
                self._enter_lower()
        elif phase == "unbracketed":
            # Whatever this measurement says, the serial search reports the
            # raised upper (its result is measured at that same rate).
            self._finish(self.upper, self.upper)
        elif phase == "hint-upper":
            if acceptable:
                # The hinted top still sustains the SLA: keep it as a known
                # lower bound and jump straight to the cold upper bound,
                # which brackets in one probe whenever the cold search's
                # initial bracket would have (further ×1.6 raises only if
                # even that sustains the SLA).
                self.known_lower = self.upper
                self.best_rate = self.upper
                self.upper = self.cold_upper
                self.phase = "raise"
            else:
                self.phase = "hint-lower"
        elif phase == "hint-lower":
            if acceptable:
                self.lower = self.hint
                self.best_rate = self.hint
                self._enter_bisect()
            else:
                # The hint itself is over capacity: it is a tighter upper
                # bound than the probe; continue with the cold phases.
                self.upper = self.hint
                self._enter_lower()
        elif phase == "lower":
            if acceptable:
                self.best_rate = self.lower
                self._enter_bisect()
            else:
                self.trickle_rate = max(self.lower / 16.0, 1e-3)
                self.phase = "trickle"
        elif phase == "trickle":
            if acceptable:
                self.lower = self.trickle_rate
                self.best_rate = self.trickle_rate
                self._enter_bisect()
            else:
                self._finish(0.0, None)
        elif phase == "bisect":
            middle = 0.5 * (self.lower + self.upper)
            if acceptable:
                self.lower = middle
                self.best_rate = middle
            else:
                self.upper = middle
            self.remaining -= 1
            if self.remaining <= 0 or (self.upper - self.lower) <= self.stop_width:
                self._finish(self.best_rate, self.best_rate)
        else:
            raise RuntimeError("cannot advance a finished bisection")

    # ------------------------------------------------------------------ #

    def _enter_lower(self) -> None:
        self.lower = self.upper / 64.0
        self.phase = "lower"

    def _enter_bisect(self) -> None:
        self.remaining = self.iterations
        if (self.upper - self.lower) <= self.stop_width:
            self._finish(self.best_rate, self.best_rate)
        else:
            self.phase = "bisect"

    def _finish(self, max_qps: Optional[float], result_rate: Optional[float]) -> None:
        self.max_qps = max_qps
        self.result_rate = result_rate
        self.phase = "done"


def speculative_rates(machine: BisectionMachine, limit: int) -> List[float]:
    """Up to ``limit`` rates the machine's next few verdicts could require.

    Breadth-first over the decision tree's branches: the first entry is
    always the rate the machine needs *now*; later entries are rates that
    become the needed one under some combination of pending verdicts, so a
    parallel search keeps them in flight speculatively.  Shallower rates —
    needed sooner, under fewer assumptions — come first, which is the order
    a bounded pipeline should fill in.
    """
    if limit <= 0:
        return []
    rates: List[float] = []
    seen: set = set()
    frontier = [machine]
    while frontier and len(rates) < limit:
        next_frontier: List[BisectionMachine] = []
        for state in frontier:
            rate = state.next_rate()
            if rate is None:
                continue
            if rate not in seen:
                seen.add(rate)
                rates.append(rate)
                if len(rates) >= limit:
                    break
            for outcome in (False, True):
                branch = state.clone()
                branch.advance(outcome)
                if not branch.done:
                    next_frontier.append(branch)
        frontier = next_frontier
    return rates


#: Top-level signature fields a near-miss bracket hint may disagree on, with
#: the similarity penalty each disagreement adds.  Everything *not* listed
#: here (and not handled by the per-server / fleet-size rules) must match
#: exactly for an entry to qualify as a hint donor.
_HINT_FLEXIBLE_FIELDS: Dict[str, float] = {
    "sla_latency_s": 2.0,
    "policy": 1.0,
    "balancer_seed": 0.5,
    "num_queries": 0.25,
    "iterations": 0.25,
    "max_queries": 0.25,
    "headroom": 0.25,
}

#: Flexible fields whose values are magnitudes (so donor distance grows with
#: the log ratio), as opposed to identity fields like a policy name or an
#: RNG seed where the numeric "distance" between values is meaningless.
_HINT_MAGNITUDE_FIELDS = frozenset(
    {"sla_latency_s", "num_queries", "iterations", "max_queries", "headroom"}
)

#: Per-server signature fields a hint donor may disagree on (per server).
_HINT_FLEXIBLE_SERVER_FIELDS: Dict[str, float] = {"batch_size": 2.0}

#: Penalty for a homogeneous-fleet size mismatch (the hint is scaled by the
#: size ratio) — deliberately the largest, so any same-size donor wins.
_HINT_SIZE_SCALE_PENALTY = 8.0


@dataclass(frozen=True)
class BracketHint:
    """A near-miss warm-start hint for the initial bisection bracket.

    ``max_qps`` is the donor entry's capacity (scaled by the fleet-size
    ratio when the donor is the same homogeneous fleet at another size);
    ``penalty`` is the similarity distance it was selected at, which the
    search uses to size its probe margin — near donors (an adjacent
    balancing policy) get a tight bracket, farther ones (another SLA or a
    scaled fleet size) a wider one.
    """

    max_qps: float
    penalty: float


def _hint_distance(
    current: Dict[str, Any], entry: Dict[str, Any]
) -> Optional[tuple]:
    """``(penalty, scale)`` for using ``entry`` as a bracket hint, or None.

    ``None`` means the entry is not a near miss at all (different workload,
    schema, platform, ...).  ``scale`` multiplies the donor's capacity —
    1.0 except for homogeneous fleets of a different size, where capacity
    scales roughly linearly with the server count.  Entries tagged
    ``hinted`` (answers themselves found via a hint) may still donate — a
    bracket hint needs no exactness — at a small extra penalty.
    """
    penalty = 0.0
    if entry.get("hinted"):
        entry = {key: value for key, value in entry.items() if key != "hinted"}
        penalty += 0.5
    if current.keys() != entry.keys():
        return None
    for field_name, value in current.items():
        if field_name in ("servers", *_HINT_FLEXIBLE_FIELDS):
            continue
        if entry[field_name] != value:
            return None
    for field_name, field_penalty in _HINT_FLEXIBLE_FIELDS.items():
        mine, theirs = current.get(field_name), entry.get(field_name)
        if theirs == mine:
            continue
        penalty += field_penalty
        # Magnitude knobs (the SLA above all) are *adjacent*, not just
        # different: rank donors by log-distance so the nearest SLA wins
        # over a farther one instead of a filename tie-break.  Identity
        # fields (a balancer seed, a policy name) carry no magnitude — for
        # them the flat penalty is the whole story.
        if (
            field_name in _HINT_MAGNITUDE_FIELDS
            and isinstance(mine, (int, float))
            and isinstance(theirs, (int, float))
            and mine > 0
            and theirs > 0
        ):
            penalty += abs(math.log2(mine / theirs))

    ours, theirs = current["servers"], entry["servers"]
    scale = 1.0
    if len(ours) == len(theirs):
        for mine, other in zip(ours, theirs):
            if mine.keys() != other.keys():
                return None
            for key, value in mine.items():
                if other[key] == value:
                    continue
                per_server = _HINT_FLEXIBLE_SERVER_FIELDS.get(key)
                if per_server is None:
                    return None
                penalty += per_server
    else:
        # A homogeneous fleet of a different size: capacity scales roughly
        # linearly with the server count, so the donor's QPS (scaled by the
        # ratio) still brackets the answer usefully.
        if not ours or not theirs:
            return None
        if any(server != ours[0] for server in ours[1:]):
            return None
        if any(server != theirs[0] for server in theirs[1:]):
            return None
        if ours[0] != theirs[0]:
            return None
        penalty += _HINT_SIZE_SCALE_PENALTY
        scale = len(ours) / len(theirs)
    return penalty, scale


class CapacityCache:
    """Warm-start store for capacity searches, with two tiers plus a memo.

    * **Replay-exact tier** (:meth:`load` / :meth:`store`): maps a canonical
      search signature to the ``max_qps`` a previous search found.  Because
      the signature pins every decision input, a hit replays the cold
      search's answer after one verifying evaluation — bit-identical.
    * **Near-miss tier** (:meth:`near_hint`): when the exact tier misses, an
      entry for the *same fleet and workload* at an adjacent SLA, batch
      size, or balancing policy (or a homogeneous fleet of a different
      size, scaled by the size ratio) can still tighten the initial
      bisection bracket.  Hints change the evaluation count, not the
      converged capacity (within the cold search's bracket tolerance), and
      are only consulted when the search opts in (``bracket_hints=True``).
    * **In-process memo** (:meth:`memo_load` / :meth:`memo_store`): full
      :class:`CapacityResult` objects keyed by digest, so one
      :class:`CapacityCache` instance shared across a sweep serves repeated
      identical searches without re-verification — the stored result *is*
      the earlier run's, trivially bit-identical.

    Entries are one JSON file per signature, named by its SHA-256 digest —
    shareable and prunable with ordinary file tools, like the sweep runner's
    result cache.  ``stats`` counts hits and misses per tier so sweep
    reports can surface cache behaviour.  The near-miss tier scans the
    directory (parsed entries are memoised per instance), so it is meant
    for per-sweep cache directories with up to a few thousand entries, not
    unbounded shared stores.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self._dir = Path(cache_dir)
        self._memo: Dict[str, "CapacityResult"] = {}
        self._entries: Dict[str, Optional[tuple]] = {}  # filename -> (sig, qps)
        self.stats: Dict[str, int] = {
            "exact_hits": 0,
            "exact_misses": 0,
            "memo_hits": 0,
            "hint_hits": 0,
            "hint_misses": 0,
            "hinted_replays": 0,
            "stores": 0,
            "corrupt_entries": 0,
        }

    @property
    def cache_dir(self) -> Path:
        """Directory holding the warm-start entries."""
        return self._dir

    @staticmethod
    def digest(signature: Dict[str, Any]) -> str:
        """Stable hex digest of a canonical (JSON-serialisable) signature."""
        payload = json.dumps(signature, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, signature: Dict[str, Any]) -> Path:
        return self._dir / f"capacity-{self.digest(signature)}.json"

    def load(self, signature: Dict[str, Any], count: bool = True) -> Optional[float]:
        """Return the cached max QPS for ``signature``, or None.

        ``count=False`` leaves the exact-tier counters untouched — used by
        lookups that are *not* the exact tier (the hinted-entry probe of a
        hints-on run), whose outcomes are tallied by their own counters.

        A present-but-unreadable entry (truncated write, garbage JSON, a
        foreign file shape) is a plain miss — the search falls back to the
        cold path — but is additionally tallied in
        ``stats["corrupt_entries"]`` so cache rot is visible rather than
        silently masquerading as cold misses.
        """
        path = self._path(signature)
        max_qps = 0.0
        try:
            text = path.read_text()
        except OSError:
            pass  # no entry: an ordinary miss
        else:
            try:
                payload = json.loads(text)
                max_qps = float(payload["max_qps"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.stats["corrupt_entries"] += 1
        hit = max_qps > 0
        if count:
            self.stats["exact_hits" if hit else "exact_misses"] += 1
        return max_qps if hit else None

    def store(self, signature: Dict[str, Any], max_qps: float) -> None:
        """Record ``max_qps`` for ``signature`` (atomic write-then-rename)."""
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._path(signature)
        entry = {"signature": signature, "max_qps": max_qps}
        scratch = path.with_suffix(f".tmp-{os.getpid()}")
        scratch.write_text(json.dumps(entry, sort_keys=True))
        scratch.replace(path)
        self._entries[path.name] = (entry["signature"], max_qps)
        self.stats["stores"] += 1
        for observer in list(_STORE_OBSERVERS):
            observer(signature, max_qps)

    # ------------------------------------------------------------------ #

    def memo_load(self, signature: Dict[str, Any]) -> Optional["CapacityResult"]:
        """This instance's previously returned result for ``signature``."""
        result = self._memo.get(self.digest(signature))
        if result is not None:
            self.stats["memo_hits"] += 1
        return result

    def memo_store(self, signature: Dict[str, Any], result: "CapacityResult") -> None:
        """Remember a finished search's full result for this process."""
        self._memo[self.digest(signature)] = result

    # ------------------------------------------------------------------ #

    def _iter_entries(self):
        """Parsed ``(signature, max_qps)`` pairs, newly seen files included."""
        try:
            names = sorted(
                name
                for name in os.listdir(self._dir)
                if name.startswith("capacity-") and name.endswith(".json")
            )
        except OSError:
            names = []
        for name in names:
            if name not in self._entries:
                parsed = None
                try:
                    text = (self._dir / name).read_text()
                except OSError:
                    text = None  # vanished mid-scan: skip silently
                if text is not None:
                    try:
                        payload = json.loads(text)
                        parsed = (
                            dict(payload["signature"]),
                            float(payload["max_qps"]),
                        )
                    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                        self.stats["corrupt_entries"] += 1
                self._entries[name] = parsed
            entry = self._entries[name]
            if entry is not None:
                yield name, entry

    def near_hint(self, signature: Dict[str, Any]) -> Optional[BracketHint]:
        """A bracket hint from the most similar near-miss entry, or None.

        Deterministic: candidates are ranked by similarity penalty (see
        :func:`_hint_distance`), ties broken by entry filename.  The exact
        entry for ``signature`` itself never reaches this tier — the caller
        consults :meth:`load` first.  Does *not* touch ``stats``: whether a
        donor actually tightened a bracket is only known once the search
        builds its machine, so the search layer records the hit or miss
        (:meth:`count_hint`).
        """
        own = self._path(signature).name
        best: Optional[tuple] = None  # (penalty, name, scaled_qps)
        for name, (entry_signature, max_qps) in self._iter_entries():
            if name == own or max_qps <= 0:
                continue
            scored = _hint_distance(signature, entry_signature)
            if scored is None:
                continue
            penalty, scale = scored
            candidate = (penalty, name, max_qps * scale)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return None
        return BracketHint(max_qps=best[2], penalty=best[0])

    def count_hint(self, used: bool) -> None:
        """Record whether a near-miss lookup actually tightened a bracket.

        A donor whose capacity sits at or above the cold bracket top cannot
        tighten anything and falls back to the cold search — that is a
        *miss* in the counters, even though an entry was found.
        """
        self.stats["hint_hits" if used else "hint_misses"] += 1


# --------------------------------------------------------------------------- #
# Cross-host cache syncing
# --------------------------------------------------------------------------- #

#: Callbacks notified on every :meth:`CapacityCache.store` in this process.
#: The distributed executor's worker shim installs one around each task so
#: the warm-start entries a remote search produced can piggy-back home to
#: the coordinator together with the task's result.
_STORE_OBSERVERS: List[Callable[[Dict[str, Any], float], None]] = []


@contextmanager
def observe_cache_stores() -> Iterator[List[Tuple[Dict[str, Any], float]]]:
    """Collect every ``CapacityCache.store`` performed while active.

    Yields a list that accumulates ``(signature, max_qps)`` pairs in store
    order, across *all* cache instances in this process.  Observers nest:
    each collector sees the stores of everything inside its own block.
    """
    recorded: List[Tuple[Dict[str, Any], float]] = []

    def _record(signature: Dict[str, Any], max_qps: float) -> None:
        recorded.append((signature, max_qps))

    _STORE_OBSERVERS.append(_record)
    try:
        yield recorded
    finally:
        _STORE_OBSERVERS.remove(_record)


def apply_synced_entries(
    cache: CapacityCache, entries: Iterable[Any]
) -> Dict[str, int]:
    """Merge warm-start entries recorded on another host into ``cache``.

    Remote workers ship back the ``(signature, max_qps)`` pairs their tasks
    stored (collected via :func:`observe_cache_stores`); the coordinator
    folds them into its own cache here.  The wire is not trusted to deliver
    well-formed pairs, so every entry is validated defensively:

    * **rejected** — wrong shape, a non-dict or non-JSON-serialisable
      signature, or a non-finite / non-positive capacity;
    * **conflicts** — an entry already present locally with a *different*
      value: the existing (first-writer) value is kept, so a replayed sweep
      never sees its warm-start answers flap under late arrivals;
    * **applied** — everything else is stored through the cache's ordinary
      atomic write-then-rename path.

    Returns the per-disposition counts.
    """
    counts = {"applied": 0, "conflicts": 0, "rejected": 0}
    for entry in entries:
        try:
            signature, raw_qps = entry
            max_qps = float(raw_qps)
            if not isinstance(signature, dict):
                raise TypeError("signature must be a dict")
            if not math.isfinite(max_qps) or max_qps <= 0:
                raise ValueError("capacity must be finite and positive")
            CapacityCache.digest(signature)  # must be JSON-serialisable
            existing = cache.load(signature, count=False)
        except (TypeError, ValueError):
            counts["rejected"] += 1
            continue
        if existing is not None:
            if existing != max_qps:
                counts["conflicts"] += 1
            continue
        cache.store(signature, max_qps)
        counts["applied"] += 1
    return counts


def find_max_qps(
    engines: EnginePair,
    config: ServingConfig,
    sla_latency_s: float,
    load_generator: LoadGenerator,
    num_queries: int = 800,
    iterations: int = 7,
    headroom: float = 1.3,
    max_queries: int = 8000,
    jobs: int = 1,
    warm_start_cache: Union["CapacityCache", str, Path, None] = None,
    pool: Optional[Any] = None,
    bracket_hints: bool = False,
    accept_early: bool = False,
) -> CapacityResult:
    """Bisection search for the maximum QPS meeting the p95 SLA.

    ``load_generator`` provides the arrival process and query-size
    distribution; its configured rate is ignored (the search sets the rate).
    A rate only counts as sustainable when the run both meets the p95 target
    and shows no sign of an unbounded backlog (``SimulationResult.acceptable``).
    Returns max_qps=0 and result=None when the SLA cannot be met at any load
    (e.g. a single large query already exceeds the target).

    A thin wrapper over :class:`repro.runtime.capacity.CapacitySearch`:
    ``jobs > 1`` keeps speculative candidate evaluations in flight on the
    invocation's shared worker pool (or ``pool``, if given), reacting to
    each completion as it lands, and ``warm_start_cache`` replays a
    previously recorded identical search after one verifying evaluation.
    Both paths return results **bit-identical** to the serial cold search.
    ``bracket_hints=True`` opts into the near-miss warm-start tier —
    fewer evaluations, same capacity within the cold search's bracket
    tolerance, *not* bit-identical (see
    :meth:`repro.runtime.capacity.CapacitySearch.run`).
    ``accept_early=True`` additionally arms the certain-acceptance exit on
    probe evaluations — same answer, bit-identical reported result, less
    simulated work per accepted probe.
    """
    from repro.runtime.capacity import CapacitySearch

    return CapacitySearch.for_server(
        engines,
        config,
        sla_latency_s,
        load_generator,
        num_queries=num_queries,
        iterations=iterations,
        headroom=headroom,
        max_queries=max_queries,
        accept_early=accept_early,
    ).run(
        jobs=jobs,
        warm_start_cache=warm_start_cache,
        pool=pool,
        bracket_hints=bracket_hints,
    )
