"""Service-level-agreement (SLA) tail-latency targets (Table II).

Each recommendation use case publishes a p95 tail-latency target; the paper
evaluates every model at three targets — Low, Medium, High — where Low and
High are 50 % below and above the published Medium target respectively
(Section V).  Throughput (QPS) is always reported *under* the active target.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Union

from repro.models.config import ModelConfig
from repro.models.zoo import get_config
from repro.utils.validation import check_positive


class SLATier(str, Enum):
    """The three evaluation tiers derived from the published target."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


#: Multipliers applied to the published (medium) target for each tier.
TIER_MULTIPLIERS: Dict[SLATier, float] = {
    SLATier.LOW: 0.5,
    SLATier.MEDIUM: 1.0,
    SLATier.HIGH: 1.5,
}


@dataclass(frozen=True)
class SLATarget:
    """A concrete p95 latency target for one model at one tier."""

    model_name: str
    tier: SLATier
    latency_s: float

    def __post_init__(self) -> None:
        check_positive("latency_s", self.latency_s)

    @property
    def latency_ms(self) -> float:
        """Target in milliseconds (the unit Table II uses)."""
        return self.latency_s * 1e3


def _resolve_config(model: Union[str, ModelConfig]) -> ModelConfig:
    if isinstance(model, ModelConfig):
        return model
    return get_config(model)


def sla_target(model: Union[str, ModelConfig], tier: SLATier = SLATier.MEDIUM) -> SLATarget:
    """The p95 target for ``model`` at ``tier``."""
    config = _resolve_config(model)
    multiplier = TIER_MULTIPLIERS[SLATier(tier)]
    return SLATarget(
        model_name=config.name,
        tier=SLATier(tier),
        latency_s=config.sla_target_s * multiplier,
    )


def sla_targets(model: Union[str, ModelConfig]) -> Dict[SLATier, SLATarget]:
    """All three tier targets for ``model``."""
    return {tier: sla_target(model, tier) for tier in SLATier}
