"""Discrete-event simulation of an at-scale recommendation inference server.

One simulated server consists of ``num_cores`` CPU worker cores sharing a FIFO
request queue, plus an optional accelerator with its own FIFO query queue.
Incoming queries are handled exactly the way DeepRecSched schedules them
(Fig. 8):

* if an accelerator is attached and the query's size exceeds the configured
  *query-size threshold*, the whole query is placed on the accelerator queue;
* otherwise the query is split into requests of at most *batch_size* items,
  which are executed by parallel CPU cores.

A query completes when all of its requests (or its accelerator execution)
finish; its latency is measured from arrival to last completion.  The
simulator reports tail latency percentiles, achieved throughput, device
utilisation, and the fraction of work processed by the accelerator — the
quantities the paper's evaluation figures are built from.

The event mechanics of a single server live in :class:`ServerKernel`, a
steppable object that owns the server's queues and accounting but not the
event heap or the clock.  :class:`ServingSimulator` drives one kernel;
:class:`~repro.serving.cluster.ClusterSimulator` drives a fleet of them from
a shared heap, which is what makes a cluster with one server bit-identical to
the single-server simulator.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import math
import operator
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.execution.engine import EnginePair
from repro.queries.query import Query
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ServingConfig:
    """Scheduling configuration of one simulated server.

    Attributes
    ----------
    batch_size:
        Maximum items per CPU request (DeepRecSched knob #1).
    num_cores:
        CPU worker cores; 0 means "all cores of the platform".
    offload_threshold:
        Query-size threshold above which whole queries are offloaded to the
        accelerator (DeepRecSched knob #2).  ``None`` disables offloading even
        if an accelerator engine is attached.
    warmup_fraction:
        Fraction of queries (by arrival order) excluded from latency
        statistics to remove the queue ramp-up transient.
    """

    batch_size: int
    num_cores: int = 0
    offload_threshold: Optional[int] = None
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        if self.num_cores < 0:
            raise ValueError(f"num_cores must be >= 0, got {self.num_cores}")
        if self.offload_threshold is not None:
            check_positive("offload_threshold", self.offload_threshold)
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


def resolve_num_cores(engines: EnginePair, config: ServingConfig) -> int:
    """Worker-core count for ``config`` on ``engines``, validated against the platform."""
    platform_cores = engines.cpu.platform.num_cores
    cores = config.num_cores if config.num_cores else platform_cores
    if cores > platform_cores:
        raise ValueError(
            f"num_cores={cores} exceeds platform core count {platform_cores}"
        )
    if config.offload_threshold is not None and not engines.has_accelerator:
        raise ValueError(
            "offload_threshold set but the engine pair has no accelerator"
        )
    return cores


class SLACriteriaMixin:
    """SLA and stability checks shared by single-server and fleet results.

    Both result types expose ``p95_latency_s``, ``p95_late_window_s``,
    ``drain_s``, and ``arrival_span_s``; keeping the acceptance criterion in
    one place guarantees the single-server and cluster capacity searches
    judge runs by exactly the same rule.
    """

    p95_latency_s: float
    p95_late_window_s: float
    drain_s: float
    arrival_span_s: float

    def meets_sla(self, sla_latency_s: float) -> bool:
        """True when the measured p95 is within the target."""
        return self.p95_latency_s <= sla_latency_s

    def is_stable(self, sla_latency_s: float) -> bool:
        """True when the run shows no sign of an unbounded backlog.

        Two symptoms of an overloaded (unstable) configuration are checked:
        the tail latency of the *late* half of the run (a growing queue makes
        later queries strictly worse), and the time needed to drain the
        backlog after the last arrival.
        """
        drain_budget = max(2.0 * sla_latency_s, 0.25 * self.arrival_span_s)
        return (
            self.p95_late_window_s <= sla_latency_s and self.drain_s <= drain_budget
        )

    def acceptable(self, sla_latency_s: float) -> bool:
        """SLA met *and* the system is stable — the capacity-search criterion."""
        return self.meets_sla(sla_latency_s) and self.is_stable(sla_latency_s)


@dataclass
class SimulationResult(SLACriteriaMixin):
    """Measurements from one simulated serving run."""

    config: ServingConfig
    num_queries: int
    measured_queries: int
    duration_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    achieved_qps: float
    offered_qps: float
    cpu_utilization: float
    gpu_utilization: float
    gpu_work_fraction: float
    p95_late_window_s: float = 0.0
    drain_s: float = 0.0
    arrival_span_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list, repr=False)


@dataclass(frozen=True)
class CertainRejection:
    """Early-exit outcome of a run whose SLA rejection became certain mid-run.

    Returned (instead of a full result) when a simulation is given a
    ``reject_above_sla_s`` target and enough measured latencies have already
    exceeded it that the *complete* run's p95 would exceed it no matter how
    the remaining queries fare (see :func:`certain_rejection_threshold`).
    The verdict is exact — ``acceptable`` is False precisely when the full
    run's would be — but the aggregate statistics of the full run were never
    computed, so this object carries only the evidence.  Capacity searches
    use it for rejected probe evaluations, whose result objects are
    discarded; any evaluation that meets the SLA always runs to completion
    and returns the ordinary full result.
    """

    sla_latency_s: float
    measured_queries: int
    over_sla_queries: int

    def meets_sla(self, sla_latency_s: float) -> bool:
        """False: the full run's p95 provably exceeds the rejection target."""
        return False

    def is_stable(self, sla_latency_s: float) -> bool:
        """False: stability was not measured, and the run is rejected anyway."""
        return False

    def acceptable(self, sla_latency_s: float) -> bool:
        """False, exactly as the completed run's ``acceptable`` would be."""
        return False


@dataclass(frozen=True)
class CertainAcceptance:
    """Early-exit outcome of a run whose SLA acceptance became certain mid-run.

    The dual of :class:`CertainRejection`: returned when a simulation is
    given an ``accept_within_sla_s`` target and so few measured latencies
    exceed it — with so few left to measure — that the complete run's p95
    (and the late-window p95 the stability check uses) provably stay within
    the target no matter how the remaining queries fare
    (:func:`certain_acceptance_threshold`).  The event loop still drains to
    the last completion without recording, so ``drain_s`` is the exact
    drain time and the stability verdict matches the full run's; only the
    aggregate statistics were never computed, so this object carries the
    evidence, not a p95.  Like the rejection stub, the verdict is relative
    to the armed target: capacity searches use it for accepted probe
    evaluations whose result objects are discarded, and re-run the one
    evaluation whose full statistics they report.
    """

    sla_latency_s: float
    measured_queries: int
    over_sla_queries: int
    drain_s: float
    arrival_span_s: float

    def meets_sla(self, sla_latency_s: float) -> bool:
        """True: the full run's p95 provably stays within the armed target."""
        return True

    def is_stable(self, sla_latency_s: float) -> bool:
        """Exact: the late-window p95 was certified when the exit fired, and
        the drain time was measured by draining the event loop."""
        drain_budget = max(2.0 * sla_latency_s, 0.25 * self.arrival_span_s)
        return self.drain_s <= drain_budget

    def acceptable(self, sla_latency_s: float) -> bool:
        """Exactly the completed run's ``acceptable`` for the armed target."""
        return self.meets_sla(sla_latency_s) and self.is_stable(sla_latency_s)


def certain_rejection_threshold(measured_total: int) -> int:
    """Over-SLA measurements after which p95 > SLA holds for the full run.

    With ``n`` measured latencies, the linear-interpolation p95 (numpy's
    default, used by :class:`~repro.utils.stats.PercentileTracker`) sits at
    virtual index ``0.95 * (n - 1)``: writing ``f = floor(0.95 * (n - 1))``,
    the interpolated value is ``x[f] + frac * (x[f+1] - x[f]) >= x[f]`` on
    the sorted samples.  Once at least ``n - f`` samples exceed the target,
    at most ``f`` samples can be within it, so ``x[f]`` — and therefore the
    p95 — exceeds the target regardless of every not-yet-measured latency.
    Measured-so-far counts only grow, which makes ``n - f`` an exact early
    rejection threshold, not a heuristic.  (The float product mirrors
    numpy's own virtual-index arithmetic bit for bit.)
    """
    if measured_total <= 0:
        return 1
    return measured_total - math.floor((measured_total - 1) * 0.95)


def certain_acceptance_threshold(measured_total: int) -> int:
    """Max over-SLA measurements for which p95 <= SLA holds for the full run.

    The dual of :func:`certain_rejection_threshold`.  With ``n`` measured
    latencies, the linear-interpolation p95 sits between the sorted samples
    at indices ``floor(f)`` and ``ceil(f)`` for ``f = 0.95 * (n - 1)``, so
    it is at most ``x[ceil(f)]``.  If no more than ``n - 1 - ceil(f)``
    samples exceed the target, then at least ``ceil(f) + 1`` samples are
    within it, so ``x[ceil(f)]`` — and therefore the p95 — is within the
    target regardless of *which* samples those are.  Mid-run the check is
    applied pessimistically (every not-yet-measured latency is assumed to
    exceed the target), which makes the early acceptance exact, not a
    heuristic.  (The float product mirrors numpy's own virtual-index
    arithmetic bit for bit.)  Returns -1 when no count certifies (nothing
    measured means nothing to accept).
    """
    if measured_total <= 0:
        return -1
    return measured_total - 1 - math.ceil((measured_total - 1) * 0.95)


# Event kinds, ordered so that completions at time t are processed before
# arrivals at the same instant (frees cores first).
EVT_CPU_DONE = 0
EVT_GPU_DONE = 1
EVT_ARRIVAL = 2

#: Sort key for arrival ordering (C-level attribute getter, not a lambda).
_arrival_key = operator.attrgetter("arrival_time")

_INFINITY = float("inf")

#: Measured latencies per bulk flush into a sketch-mode tracker: large
#: enough that the per-flush numpy conversion amortises, small enough that
#: the in-flight chunk never dominates peak memory.
_SKETCH_CHUNK = 32768

_LATENCY_STATS_MODES = ("exact", "sketch")


def _check_latency_stats(latency_stats: str) -> str:
    if latency_stats not in _LATENCY_STATS_MODES:
        raise ValueError(
            f"latency_stats must be one of {_LATENCY_STATS_MODES}, "
            f"got {latency_stats!r}"
        )
    return latency_stats


@contextmanager
def pause_gc() -> Iterator[None]:
    """Disable generational GC for the duration of an event loop.

    The loops allocate hundreds of thousands of short-lived event tuples and
    create no reference cycles, so generation-0 collections triggered mid-run
    are pure overhead.  The collector is restored (and never force-run) on
    exit, including on exceptions.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class _LazyServiceRow:
    """List-like service-time row backed by a scalar latency callable.

    Fallback for duck-typed engines (e.g. ``ScaledCPUEngine``) that expose
    ``request_latency_s`` but no precomputed latency table: entries are
    computed through the scalar call on first access and memoised, so the
    kernel's ``row[batch]`` lookup works identically either way.
    """

    __slots__ = ("_latency_s", "_active_cores", "_values")

    def __init__(self, latency_s, active_cores: int, max_batch: int) -> None:
        self._latency_s = latency_s
        self._active_cores = active_cores
        self._values: List[Optional[float]] = [None] * (max_batch + 1)

    def __getitem__(self, batch_size: int) -> float:
        value = self._values[batch_size]
        if value is None:
            value = self._latency_s(batch_size, self._active_cores)
            self._values[batch_size] = value
        return value


class _QueryState:
    """Bookkeeping for a query split into several CPU requests (hot-path object).

    Queries that produce a single unit of work (one CPU request, or a whole
    query offloaded to the accelerator) skip this object entirely — the
    kernel stores the bare :class:`Query` in its state map instead.
    """

    __slots__ = ("query", "outstanding_requests")

    def __init__(self, query: Query, outstanding_requests: int) -> None:
        self.query = query
        self.outstanding_requests = outstanding_requests


class ServerKernel:
    """Steppable event mechanics of one simulated server.

    The kernel owns the server-local state — CPU/accelerator FIFO queues,
    busy-core count, busy-time and work accounting — while the *owner* owns
    the event heap and the simulated clock.  Completion events are pushed
    straight onto the owner's heap as ``(time, kind, seq, server_index,
    query_id)`` tuples; ``server_index`` tags each event with the kernel it
    belongs to (a cluster routes on it, a single-server owner ignores it) and
    the shared ``seq`` counter keeps equal-time events deterministically
    ordered.

    The live ``outstanding_queries`` / ``outstanding_items`` counters are the
    signals cluster load balancers key on.

    Service times come from the engines' dense latency tables (bit-identical
    to the scalar engine calls), so the per-event cost is a list index rather
    than a trip through the Python latency model.
    """

    __slots__ = (
        "_cpu",
        "_gpu",
        "_config",
        "_num_cores",
        "_events",
        "_counter",
        "_server_index",
        "_batch_size",
        "_threshold",
        "_cpu_service",
        "_gpu_service",
        "_cpu_queue",
        "_gpu_queue",
        "_states",
        "_busy_cores",
        "_gpu_busy",
        "_service_scale",
        "cpu_busy_time",
        "gpu_busy_time",
        "total_items",
        "gpu_items",
        "num_submitted",
        "outstanding_items",
    )

    def __init__(
        self,
        engines: EnginePair,
        config: ServingConfig,
        num_cores: int,
        events: List[tuple],
        counter: Iterator[int],
        server_index: int = 0,
    ) -> None:
        self._cpu = engines.cpu
        self._gpu = engines.gpu
        self._config = config
        self._num_cores = num_cores
        self._events = events
        self._counter = counter
        self._server_index = server_index
        self._batch_size = config.batch_size
        self._threshold = (
            config.offload_threshold if engines.gpu is not None else None
        )

        # Dense service-time lookups: _cpu_service[active_cores][batch].
        # Engines without a latency table (duck-typed wrappers) fall back to
        # lazily memoised scalar calls with the same row[batch] interface.
        cpu_table = getattr(engines.cpu, "latency_table", None)
        if cpu_table is not None:
            self._cpu_service = [None] + [
                cpu_table.column(config.batch_size, cores)
                for cores in range(1, num_cores + 1)
            ]
        else:
            self._cpu_service = [None] + [
                _LazyServiceRow(engines.cpu.request_latency_s, cores, config.batch_size)
                for cores in range(1, num_cores + 1)
            ]
        if engines.gpu is None:
            self._gpu_service = None
        else:
            gpu_table = getattr(engines.gpu, "latency_table", None)
            self._gpu_service = (
                gpu_table.total_s if gpu_table is not None else engines.gpu.query_latency_s
            )

        self._cpu_queue: deque = deque()  # FIFO of (query_id, request_batch)
        self._gpu_queue: deque = deque()  # FIFO of query ids
        self._states: Dict[int, _QueryState] = {}
        self._busy_cores = 0
        self._gpu_busy = False
        # Straggler hook: every service time is multiplied by this factor.
        # The default 1.0 is exact under IEEE-754 (x * 1.0 == x), so a fleet
        # with the hook installed but no faults stays bit-identical.
        self._service_scale = 1.0

        self.cpu_busy_time = 0.0
        self.gpu_busy_time = 0.0
        self.total_items = 0
        self.gpu_items = 0
        self.num_submitted = 0
        self.outstanding_items = 0

    @property
    def config(self) -> ServingConfig:
        """The scheduling configuration this kernel runs."""
        return self._config

    @property
    def num_cores(self) -> int:
        """Number of CPU worker cores simulated."""
        return self._num_cores

    @property
    def outstanding_queries(self) -> int:
        """Queries accepted but not yet fully completed (derived, O(1))."""
        return len(self._states)

    @property
    def num_completed(self) -> int:
        """Queries fully completed so far (derived, O(1)).

        After a :meth:`crash`, queries lost in flight are counted here too:
        the counter is "queries no longer on the server", and the fault
        layer tracks failures separately in its
        :class:`~repro.faults.FaultStats`.
        """
        return self.num_submitted - len(self._states)

    @property
    def service_scale(self) -> float:
        """Multiplier applied to every service time (straggler injection).

        Scales only dispatches made while it is set — work already on a
        core/accelerator keeps its original completion time, exactly like a
        machine that slows down mid-request would not retroactively stretch
        finished cycles.
        """
        return self._service_scale

    @service_scale.setter
    def service_scale(self, scale: float) -> None:
        if scale <= 0.0:
            raise ValueError(f"service_scale must be > 0, got {scale}")
        self._service_scale = scale

    def set_server_index(self, server_index: int) -> None:
        """Re-tag future completion events with a new heap routing slot.

        The cluster's fault path retires a crashed kernel's old slot (so
        completions already on the shared heap become stale no-ops) and
        rebinds the kernel to a fresh slot on recovery.
        """
        self._server_index = server_index

    def crash(self) -> List[Query]:
        """Fail the node: drop all queued and in-flight work.

        Returns the lost queries in submission order so the owner can fail
        or re-dispatch them per its retry policy.  Busy-time and item
        counters keep the work already admitted — burned cycles on a dead
        node are not refunded, matching fleet-utilisation accounting.
        Completion events already pushed onto the shared heap are NOT
        removed; the owner must retire this kernel's ``server_index`` slot
        so they arrive as stale no-ops.
        """
        states = self._states
        lost = [
            state.query if type(state) is _QueryState else state
            for state in states.values()  # reprolint: disable=RL005 -- insertion order IS the contract: docstring promises submission order
        ]
        states.clear()
        self._cpu_queue.clear()
        self._gpu_queue.clear()
        self._busy_cores = 0
        self._gpu_busy = False
        self.outstanding_items = 0
        return lost

    def submit(self, query: Query, now: float) -> None:
        """Accept an arriving query: offload it whole or split it for the CPU."""
        size = query.size
        query_id = query.query_id
        self.num_submitted += 1
        self.total_items += size
        self.outstanding_items += size
        threshold = self._threshold
        if threshold is not None and size > threshold:
            self._states[query_id] = query
            self.gpu_items += size
            self._gpu_queue.append(query_id)
            self._dispatch_gpu(now)
        elif size <= self._batch_size:
            # Single-request query (the common case): no split bookkeeping,
            # and when a core is free the request starts immediately without
            # touching the FIFO (a free core implies an empty queue).
            self._states[query_id] = query
            busy = self._busy_cores
            if busy < self._num_cores:
                busy += 1
                service = self._cpu_service[busy][size] * self._service_scale
                self.cpu_busy_time += service
                self._busy_cores = busy
                heapq.heappush(
                    self._events,
                    (
                        now + service,
                        EVT_CPU_DONE,
                        next(self._counter),
                        self._server_index,
                        query_id,
                    ),
                )
            else:
                self._cpu_queue.append((query_id, size))
        else:
            # Inline query splitting: full batches first, remainder last —
            # the exact request order split_query produces, without the
            # per-request object allocations.
            batch = self._batch_size
            full, remainder = divmod(size, batch)
            queue = self._cpu_queue
            queue.extend(itertools.repeat((query_id, batch), full))
            if remainder:
                queue.append((query_id, remainder))
                full += 1
            self._states[query_id] = _QueryState(query, full)
            self._dispatch_cpu(now)

    def on_cpu_done(self, query_id: int, now: float) -> Optional[Query]:
        """Handle one CPU request completion; return the query if it finished."""
        busy = self._busy_cores - 1
        states = self._states
        state = states[query_id]
        if type(state) is _QueryState:
            remaining = state.outstanding_requests - 1
            if remaining:
                state.outstanding_requests = remaining
                query = None
            else:
                query = state.query
        else:
            query = state
        if query is not None:
            del states[query_id]
            self.outstanding_items -= query.size
        # Inline of _dispatch_cpu: exactly one core was freed, so at most one
        # queued request can start (the loop runs at most once).
        queue = self._cpu_queue
        if queue:
            next_id, request_batch = queue.popleft()
            busy += 1
            service = self._cpu_service[busy][request_batch] * self._service_scale
            self.cpu_busy_time += service
            heapq.heappush(
                self._events,
                (
                    now + service,
                    EVT_CPU_DONE,
                    next(self._counter),
                    self._server_index,
                    next_id,
                ),
            )
        self._busy_cores = busy
        return query

    def on_gpu_done(self, query_id: int, now: float) -> Query:
        """Handle an accelerator query completion; always finishes the query."""
        self._gpu_busy = False
        query = self._states.pop(query_id)
        self.outstanding_items -= query.size
        self._dispatch_gpu(now)
        return query

    # ------------------------------------------------------------------ #

    def _dispatch_cpu(self, now: float) -> None:
        queue = self._cpu_queue
        busy = self._busy_cores
        cores = self._num_cores
        if not queue or busy >= cores:
            return
        service_rows = self._cpu_service
        scale = self._service_scale
        heappush = heapq.heappush
        events = self._events
        counter = self._counter
        server_index = self._server_index
        busy_time = self.cpu_busy_time
        while queue and busy < cores:
            query_id, request_batch = queue.popleft()
            busy += 1
            service = service_rows[busy][request_batch] * scale
            busy_time += service
            heappush(
                events,
                (now + service, EVT_CPU_DONE, next(counter), server_index, query_id),
            )
        self._busy_cores = busy
        self.cpu_busy_time = busy_time

    def _dispatch_gpu(self, now: float) -> None:
        if self._gpu_busy or not self._gpu_queue:
            return
        query_id = self._gpu_queue.popleft()
        self._gpu_busy = True
        service = self._gpu_service(self._states[query_id].size) * self._service_scale
        self.gpu_busy_time += service
        heapq.heappush(
            self._events,
            (
                now + service,
                EVT_GPU_DONE,
                next(self._counter),
                self._server_index,
                query_id,
            ),
        )


def late_window_p95(samples: Sequence[float]) -> float:
    """p95 of the second (completion-ordered) half of the measured latencies."""
    late_window = samples[len(samples) // 2 :]
    return float(np.percentile(late_window, 95)) if len(late_window) else 0.0


def _sketch_recorder(tracker, late_tracker, late_start):
    """Chunked ``record(latency)`` / ``flush()`` pair for sketch-mode runs.

    Latencies buffer into a bounded chunk and flush in bulk (the tracker's
    ndarray fast path).  A flush is forced exactly at the late-window
    boundary, so no chunk ever straddles it: every chunk at or past
    ``late_start`` measured samples feeds the late-window sketch too.
    """
    chunk: List[float] = []
    chunk_append = chunk.append
    state = [0]  # measured samples already flushed (chunk start index)

    def flush() -> None:
        if not chunk:
            return
        arr = np.asarray(chunk, dtype=np.float64)
        tracker.extend(arr)
        if state[0] >= late_start:
            late_tracker.extend(arr)
        state[0] += len(chunk)
        chunk.clear()

    def record(latency: float) -> None:
        chunk_append(latency)
        filled = state[0] + len(chunk)
        if filled == late_start or len(chunk) >= _SKETCH_CHUNK:
            flush()

    return record, flush


def _drain_events(events, ordered, cursor, next_arrival, kernel, last_completion):
    """Run the event loop to exhaustion without recording latencies.

    Used once a :class:`CertainAcceptance` certificate fires: the remaining
    completions cannot change the verdict, but the drain time (last
    completion after the last arrival) is part of the stability check, so
    the mechanics still run — submissions, completions, clock — with all
    per-query measurement skipped.  Returns the exact last completion time.
    """
    heappop = heapq.heappop
    submit = kernel.submit
    on_cpu_done = kernel.on_cpu_done
    on_gpu_done = kernel.on_gpu_done
    num_arrivals = len(ordered)
    while True:
        if events:
            head = events[0]
            now = head[0]
            if now <= next_arrival:
                _, kind, _, _, query_id = heappop(events)
                if kind == EVT_CPU_DONE:
                    if on_cpu_done(query_id, now) is None:
                        continue
                else:  # EVT_GPU_DONE
                    on_gpu_done(query_id, now)
                if now > last_completion:
                    last_completion = now
                continue
        if cursor >= num_arrivals:
            return last_completion
        query = ordered[cursor]
        cursor += 1
        next_arrival = (
            ordered[cursor].arrival_time if cursor < num_arrivals else _INFINITY
        )
        submit(query, query.arrival_time)


class ServingSimulator:
    """Event-driven simulator for one inference server.

    ``latency_stats`` selects how measured latencies are aggregated:
    ``"exact"`` (default) buffers every sample — bit-identical statistics,
    memory linear in the trace; ``"sketch"`` streams samples into a
    fixed-space :class:`~repro.utils.sketch.QuantileSketch` — percentiles
    within the sketch's documented rank-error bound, peak memory O(1) in
    the trace length, and ``latencies_s`` left empty on the result.
    """

    def __init__(
        self,
        engines: EnginePair,
        config: ServingConfig,
        latency_stats: str = "exact",
    ) -> None:
        self._engines = engines
        self._num_cores = resolve_num_cores(engines, config)
        self._config = config
        self._latency_stats = _check_latency_stats(latency_stats)

    @property
    def config(self) -> ServingConfig:
        """The scheduling configuration being simulated."""
        return self._config

    @property
    def num_cores(self) -> int:
        """Number of CPU worker cores simulated."""
        return self._num_cores

    @property
    def latency_stats(self) -> str:
        """Latency aggregation mode: ``"exact"`` or ``"sketch"``."""
        return self._latency_stats

    # ------------------------------------------------------------------ #

    def run(
        self,
        queries: Sequence[Query],
        reject_above_sla_s: Optional[float] = None,
        accept_within_sla_s: Optional[float] = None,
    ) -> Union[SimulationResult, CertainRejection, CertainAcceptance]:
        """Simulate serving ``queries`` and return aggregate measurements.

        ``reject_above_sla_s`` arms the exact early-rejection exit: the run
        stops and returns a :class:`CertainRejection` the moment enough
        measured latencies exceed the target that the completed run's p95
        would provably exceed it too (:func:`certain_rejection_threshold`).
        With only rejection armed, runs that meet the target always complete
        and return the ordinary full result, so accepted measurements are
        unchanged bit for bit.

        ``accept_within_sla_s`` arms the dual early-acceptance exit: once so
        few measured latencies exceed the target that neither the full run's
        p95 nor its late-window p95 can end up over it
        (:func:`certain_acceptance_threshold`), latency recording stops, the
        event loop drains to the exact last completion, and a
        :class:`CertainAcceptance` carrying the measured drain time is
        returned instead of full statistics.  Callers that report a run's
        statistics must leave this unarmed (or re-run) — capacity searches
        arm it only for probe evaluations whose result objects are discarded.
        """
        if not queries:
            raise ValueError("cannot simulate an empty query stream")
        config = self._config

        ordered = sorted(queries, key=_arrival_key)
        warmup_count = int(len(ordered) * config.warmup_fraction)
        warmup_ids = {q.query_id for q in ordered[:warmup_count]}
        measured_total = len(ordered) - warmup_count
        reject_sla = reject_above_sla_s if reject_above_sla_s is not None else _INFINITY
        reject_needed = certain_rejection_threshold(measured_total)
        over_sla = 0

        # Certain-acceptance bookkeeping: the late-window boundary is known
        # up front (every measured query completes in a no-fault run), so
        # both the whole-run and late-window certificates can be tracked.
        accept_armed = accept_within_sla_s is not None
        accept_sla = accept_within_sla_s if accept_armed else _INFINITY
        late_start = measured_total // 2
        accept_allowed = certain_acceptance_threshold(measured_total)
        accept_allowed_late = certain_acceptance_threshold(measured_total - late_start)
        accept_over = 0
        accept_over_late = 0

        # Arrivals are consumed straight from the sorted list with a cursor;
        # only completions go through the event heap.  A completion at time t
        # is processed before an arrival at the same instant (frees cores
        # first), matching the EVT_* ordering of the all-in-one-heap form.
        events: List[tuple] = []
        kernel = ServerKernel(
            self._engines, config, self._num_cores, events, itertools.count()
        )

        first_arrival = ordered[0].arrival_time
        last_completion = first_arrival

        # Hot loop: bind everything to locals.  In exact mode measured
        # latencies collect into a plain list and feed the tracker in one
        # vectorized pass; in sketch mode they flush chunk-wise into
        # fixed-space sketches so peak memory stays O(1) in the trace.
        heappop = heapq.heappop
        submit = kernel.submit
        on_cpu_done = kernel.on_cpu_done
        on_gpu_done = kernel.on_gpu_done
        measured_latencies: List[float] = []
        sketch_mode = self._latency_stats == "sketch"
        if sketch_mode:
            tracker = PercentileTracker(mode="sketch")
            late_tracker = PercentileTracker(mode="sketch")
            record, flush_chunks = _sketch_recorder(tracker, late_tracker, late_start)
        else:
            record = measured_latencies.append
        measured_count = 0
        num_arrivals = len(ordered)
        cursor = 0
        next_arrival = first_arrival
        with pause_gc():
            while True:
                if events:
                    head = events[0]
                    now = head[0]
                    if now <= next_arrival:
                        _, kind, _, _, query_id = heappop(events)
                        if kind == EVT_CPU_DONE:
                            completed = on_cpu_done(query_id, now)
                            if completed is None:
                                continue
                        else:  # EVT_GPU_DONE
                            completed = on_gpu_done(query_id, now)
                        if now > last_completion:
                            last_completion = now
                        if completed.query_id not in warmup_ids:
                            latency = now - completed.arrival_time
                            record(latency)
                            measured_count += 1
                            if latency > reject_sla:
                                over_sla += 1
                                if over_sla >= reject_needed:
                                    return CertainRejection(
                                        sla_latency_s=reject_sla,
                                        measured_queries=measured_count,
                                        over_sla_queries=over_sla,
                                    )
                            if accept_armed:
                                if latency > accept_sla:
                                    accept_over += 1
                                    if measured_count > late_start:
                                        accept_over_late += 1
                                remaining = measured_total - measured_count
                                if (
                                    accept_over + remaining <= accept_allowed
                                    and accept_over_late + remaining
                                    <= accept_allowed_late
                                ):
                                    last_completion = _drain_events(
                                        events,
                                        ordered,
                                        cursor,
                                        next_arrival,
                                        kernel,
                                        last_completion,
                                    )
                                    return CertainAcceptance(
                                        sla_latency_s=accept_sla,
                                        measured_queries=measured_count,
                                        over_sla_queries=accept_over,
                                        drain_s=max(
                                            0.0,
                                            last_completion
                                            - ordered[-1].arrival_time,
                                        ),
                                        arrival_span_s=max(
                                            ordered[-1].arrival_time - first_arrival,
                                            1e-9,
                                        ),
                                    )
                        continue
                if cursor >= num_arrivals:
                    break
                query = ordered[cursor]
                cursor += 1
                next_arrival = (
                    ordered[cursor].arrival_time if cursor < num_arrivals else _INFINITY
                )
                submit(query, query.arrival_time)

        if sketch_mode:
            flush_chunks()
            samples: List[float] = []
        else:
            tracker = PercentileTracker()
            tracker.extend(measured_latencies)

        duration = max(last_completion - first_arrival, 1e-9)
        offered_duration = max(ordered[-1].arrival_time - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            raise ValueError(
                "no queries outside the warmup window; lower warmup_fraction or "
                "send more queries"
            )
        if sketch_mode:
            p95_late = (
                late_tracker.percentile(95) if late_tracker.raw_count else 0.0
            )
        else:
            samples = tracker.samples()
            p95_late = late_window_p95(samples)
        return SimulationResult(
            config=config,
            num_queries=len(ordered),
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=len(ordered) / duration,
            offered_qps=len(ordered) / offered_duration,
            cpu_utilization=min(1.0, kernel.cpu_busy_time / (self._num_cores * duration)),
            gpu_utilization=min(1.0, kernel.gpu_busy_time / duration),
            gpu_work_fraction=(
                (kernel.gpu_items / kernel.total_items) if kernel.total_items else 0.0
            ),
            p95_late_window_s=p95_late,
            drain_s=max(0.0, last_completion - ordered[-1].arrival_time),
            arrival_span_s=offered_duration,
            latencies_s=samples,
        )
