"""Discrete-event simulation of an at-scale recommendation inference server.

One simulated server consists of ``num_cores`` CPU worker cores sharing a FIFO
request queue, plus an optional accelerator with its own FIFO query queue.
Incoming queries are handled exactly the way DeepRecSched schedules them
(Fig. 8):

* if an accelerator is attached and the query's size exceeds the configured
  *query-size threshold*, the whole query is placed on the accelerator queue;
* otherwise the query is split into requests of at most *batch_size* items,
  which are executed by parallel CPU cores.

A query completes when all of its requests (or its accelerator execution)
finish; its latency is measured from arrival to last completion.  The
simulator reports tail latency percentiles, achieved throughput, device
utilisation, and the fraction of work processed by the accelerator — the
quantities the paper's evaluation figures are built from.

The event mechanics of a single server live in :class:`ServerKernel`, a
steppable object that owns the server's queues and accounting but not the
event heap or the clock.  :class:`ServingSimulator` drives one kernel;
:class:`~repro.serving.cluster.ClusterSimulator` drives a fleet of them from
a shared heap, which is what makes a cluster with one server bit-identical to
the single-server simulator.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.execution.engine import EnginePair
from repro.queries.query import Query
from repro.serving.request import split_query
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ServingConfig:
    """Scheduling configuration of one simulated server.

    Attributes
    ----------
    batch_size:
        Maximum items per CPU request (DeepRecSched knob #1).
    num_cores:
        CPU worker cores; 0 means "all cores of the platform".
    offload_threshold:
        Query-size threshold above which whole queries are offloaded to the
        accelerator (DeepRecSched knob #2).  ``None`` disables offloading even
        if an accelerator engine is attached.
    warmup_fraction:
        Fraction of queries (by arrival order) excluded from latency
        statistics to remove the queue ramp-up transient.
    """

    batch_size: int
    num_cores: int = 0
    offload_threshold: Optional[int] = None
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        if self.num_cores < 0:
            raise ValueError(f"num_cores must be >= 0, got {self.num_cores}")
        if self.offload_threshold is not None:
            check_positive("offload_threshold", self.offload_threshold)
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


def resolve_num_cores(engines: EnginePair, config: ServingConfig) -> int:
    """Worker-core count for ``config`` on ``engines``, validated against the platform."""
    platform_cores = engines.cpu.platform.num_cores
    cores = config.num_cores if config.num_cores else platform_cores
    if cores > platform_cores:
        raise ValueError(
            f"num_cores={cores} exceeds platform core count {platform_cores}"
        )
    if config.offload_threshold is not None and not engines.has_accelerator:
        raise ValueError(
            "offload_threshold set but the engine pair has no accelerator"
        )
    return cores


class SLACriteriaMixin:
    """SLA and stability checks shared by single-server and fleet results.

    Both result types expose ``p95_latency_s``, ``p95_late_window_s``,
    ``drain_s``, and ``arrival_span_s``; keeping the acceptance criterion in
    one place guarantees the single-server and cluster capacity searches
    judge runs by exactly the same rule.
    """

    p95_latency_s: float
    p95_late_window_s: float
    drain_s: float
    arrival_span_s: float

    def meets_sla(self, sla_latency_s: float) -> bool:
        """True when the measured p95 is within the target."""
        return self.p95_latency_s <= sla_latency_s

    def is_stable(self, sla_latency_s: float) -> bool:
        """True when the run shows no sign of an unbounded backlog.

        Two symptoms of an overloaded (unstable) configuration are checked:
        the tail latency of the *late* half of the run (a growing queue makes
        later queries strictly worse), and the time needed to drain the
        backlog after the last arrival.
        """
        drain_budget = max(2.0 * sla_latency_s, 0.25 * self.arrival_span_s)
        return (
            self.p95_late_window_s <= sla_latency_s and self.drain_s <= drain_budget
        )

    def acceptable(self, sla_latency_s: float) -> bool:
        """SLA met *and* the system is stable — the capacity-search criterion."""
        return self.meets_sla(sla_latency_s) and self.is_stable(sla_latency_s)


@dataclass
class SimulationResult(SLACriteriaMixin):
    """Measurements from one simulated serving run."""

    config: ServingConfig
    num_queries: int
    measured_queries: int
    duration_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    achieved_qps: float
    offered_qps: float
    cpu_utilization: float
    gpu_utilization: float
    gpu_work_fraction: float
    p95_late_window_s: float = 0.0
    drain_s: float = 0.0
    arrival_span_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list, repr=False)


# Event kinds, ordered so that completions at time t are processed before
# arrivals at the same instant (frees cores first).
EVT_CPU_DONE = 0
EVT_GPU_DONE = 1
EVT_ARRIVAL = 2


@dataclass
class _QueryState:
    query: Query
    outstanding_requests: int
    on_gpu: bool


class ServerKernel:
    """Steppable event mechanics of one simulated server.

    The kernel owns the server-local state — CPU/accelerator FIFO queues,
    busy-core count, busy-time and work accounting — while the *owner* owns
    the event heap and the simulated clock.  Completion events are emitted
    through the ``schedule`` callback (``schedule(time, kind, query_id)``),
    which lets a cluster tag each event with the kernel it belongs to.

    The live ``outstanding_queries`` / ``outstanding_items`` counters are the
    signals cluster load balancers key on.
    """

    def __init__(
        self,
        engines: EnginePair,
        config: ServingConfig,
        num_cores: int,
        schedule: Callable[[float, int, int], None],
    ) -> None:
        self._cpu = engines.cpu
        self._gpu = engines.gpu
        self._config = config
        self._num_cores = num_cores
        self._schedule = schedule

        self._cpu_queue: List = []  # FIFO of (query_id, request_batch)
        self._gpu_queue: List[int] = []  # FIFO of query ids
        self._states: Dict[int, _QueryState] = {}
        self._busy_cores = 0
        self._gpu_busy = False

        self.cpu_busy_time = 0.0
        self.gpu_busy_time = 0.0
        self.total_items = 0
        self.gpu_items = 0
        self.num_submitted = 0
        self.num_completed = 0
        self.outstanding_queries = 0
        self.outstanding_items = 0

    @property
    def config(self) -> ServingConfig:
        """The scheduling configuration this kernel runs."""
        return self._config

    @property
    def num_cores(self) -> int:
        """Number of CPU worker cores simulated."""
        return self._num_cores

    def submit(self, query: Query, now: float) -> None:
        """Accept an arriving query: offload it whole or split it for the CPU."""
        self.num_submitted += 1
        self.total_items += query.size
        self.outstanding_queries += 1
        self.outstanding_items += query.size
        threshold = self._config.offload_threshold
        offload = (
            threshold is not None and self._gpu is not None and query.size > threshold
        )
        if offload:
            self._states[query.query_id] = _QueryState(query, 0, True)
            self.gpu_items += query.size
            self._gpu_queue.append(query.query_id)
            self._dispatch_gpu(now)
        else:
            requests = split_query(query, self._config.batch_size)
            self._states[query.query_id] = _QueryState(query, len(requests), False)
            for request in requests:
                self._cpu_queue.append((query.query_id, request.batch_size))
            self._dispatch_cpu(now)

    def on_cpu_done(self, query_id: int, now: float) -> Optional[Query]:
        """Handle one CPU request completion; return the query if it finished."""
        self._busy_cores -= 1
        state = self._states[query_id]
        state.outstanding_requests -= 1
        completed = None
        if state.outstanding_requests == 0:
            completed = self._finish(query_id)
        self._dispatch_cpu(now)
        return completed

    def on_gpu_done(self, query_id: int, now: float) -> Query:
        """Handle an accelerator query completion; always finishes the query."""
        self._gpu_busy = False
        completed = self._finish(query_id)
        self._dispatch_gpu(now)
        return completed

    # ------------------------------------------------------------------ #

    def _dispatch_cpu(self, now: float) -> None:
        while self._cpu_queue and self._busy_cores < self._num_cores:
            query_id, request_batch = self._cpu_queue.pop(0)
            self._busy_cores += 1
            service = self._cpu.request_latency_s(request_batch, self._busy_cores)
            self.cpu_busy_time += service
            self._schedule(now + service, EVT_CPU_DONE, query_id)

    def _dispatch_gpu(self, now: float) -> None:
        if self._gpu_busy or not self._gpu_queue:
            return
        query_id = self._gpu_queue.pop(0)
        self._gpu_busy = True
        service = self._gpu.query_latency_s(self._states[query_id].query.size)
        self.gpu_busy_time += service
        self._schedule(now + service, EVT_GPU_DONE, query_id)

    def _finish(self, query_id: int) -> Query:
        state = self._states.pop(query_id)
        self.outstanding_queries -= 1
        self.outstanding_items -= state.query.size
        self.num_completed += 1
        return state.query


def late_window_p95(samples: Sequence[float]) -> float:
    """p95 of the second (completion-ordered) half of the measured latencies."""
    late_window = samples[len(samples) // 2 :]
    return float(np.percentile(late_window, 95)) if len(late_window) else 0.0


class ServingSimulator:
    """Event-driven simulator for one inference server."""

    def __init__(self, engines: EnginePair, config: ServingConfig) -> None:
        self._engines = engines
        self._num_cores = resolve_num_cores(engines, config)
        self._config = config

    @property
    def config(self) -> ServingConfig:
        """The scheduling configuration being simulated."""
        return self._config

    @property
    def num_cores(self) -> int:
        """Number of CPU worker cores simulated."""
        return self._num_cores

    # ------------------------------------------------------------------ #

    def run(self, queries: Sequence[Query]) -> SimulationResult:
        """Simulate serving ``queries`` and return aggregate measurements."""
        if not queries:
            raise ValueError("cannot simulate an empty query stream")
        config = self._config

        ordered = sorted(queries, key=lambda q: q.arrival_time)
        warmup_count = int(len(ordered) * config.warmup_fraction)
        warmup_ids = {q.query_id for q in ordered[:warmup_count]}

        counter = itertools.count()
        events: List[tuple] = []
        for query in ordered:
            heapq.heappush(
                events, (query.arrival_time, EVT_ARRIVAL, next(counter), query)
            )

        def schedule(time: float, kind: int, query_id: int) -> None:
            heapq.heappush(events, (time, kind, next(counter), query_id))

        kernel = ServerKernel(self._engines, config, self._num_cores, schedule)

        tracker = PercentileTracker()
        first_arrival = ordered[0].arrival_time
        last_completion = first_arrival

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == EVT_ARRIVAL:
                kernel.submit(payload, now)
                continue
            if kind == EVT_CPU_DONE:
                completed = kernel.on_cpu_done(payload, now)
            else:  # EVT_GPU_DONE
                completed = kernel.on_gpu_done(payload, now)
            if completed is not None:
                last_completion = max(last_completion, now)
                if completed.query_id not in warmup_ids:
                    tracker.add(now - completed.arrival_time)

        duration = max(last_completion - first_arrival, 1e-9)
        offered_duration = max(ordered[-1].arrival_time - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            raise ValueError(
                "no queries outside the warmup window; lower warmup_fraction or "
                "send more queries"
            )
        samples = tracker.samples()
        return SimulationResult(
            config=config,
            num_queries=len(ordered),
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=len(ordered) / duration,
            offered_qps=len(ordered) / offered_duration,
            cpu_utilization=min(1.0, kernel.cpu_busy_time / (self._num_cores * duration)),
            gpu_utilization=min(1.0, kernel.gpu_busy_time / duration),
            gpu_work_fraction=(
                (kernel.gpu_items / kernel.total_items) if kernel.total_items else 0.0
            ),
            p95_late_window_s=late_window_p95(samples),
            drain_s=max(0.0, last_completion - ordered[-1].arrival_time),
            arrival_span_s=offered_duration,
            latencies_s=samples,
        )
