"""Discrete-event simulation of an at-scale recommendation inference server.

One simulated server consists of ``num_cores`` CPU worker cores sharing a FIFO
request queue, plus an optional accelerator with its own FIFO query queue.
Incoming queries are handled exactly the way DeepRecSched schedules them
(Fig. 8):

* if an accelerator is attached and the query's size exceeds the configured
  *query-size threshold*, the whole query is placed on the accelerator queue;
* otherwise the query is split into requests of at most *batch_size* items,
  which are executed by parallel CPU cores.

A query completes when all of its requests (or its accelerator execution)
finish; its latency is measured from arrival to last completion.  The
simulator reports tail latency percentiles, achieved throughput, device
utilisation, and the fraction of work processed by the accelerator — the
quantities the paper's evaluation figures are built from.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.execution.engine import EnginePair
from repro.queries.query import Query
from repro.serving.request import split_query
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ServingConfig:
    """Scheduling configuration of one simulated server.

    Attributes
    ----------
    batch_size:
        Maximum items per CPU request (DeepRecSched knob #1).
    num_cores:
        CPU worker cores; 0 means "all cores of the platform".
    offload_threshold:
        Query-size threshold above which whole queries are offloaded to the
        accelerator (DeepRecSched knob #2).  ``None`` disables offloading even
        if an accelerator engine is attached.
    warmup_fraction:
        Fraction of queries (by arrival order) excluded from latency
        statistics to remove the queue ramp-up transient.
    """

    batch_size: int
    num_cores: int = 0
    offload_threshold: Optional[int] = None
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        if self.num_cores < 0:
            raise ValueError(f"num_cores must be >= 0, got {self.num_cores}")
        if self.offload_threshold is not None:
            check_positive("offload_threshold", self.offload_threshold)
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


@dataclass
class SimulationResult:
    """Measurements from one simulated serving run."""

    config: ServingConfig
    num_queries: int
    measured_queries: int
    duration_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    achieved_qps: float
    offered_qps: float
    cpu_utilization: float
    gpu_utilization: float
    gpu_work_fraction: float
    p95_late_window_s: float = 0.0
    drain_s: float = 0.0
    arrival_span_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list, repr=False)

    def meets_sla(self, sla_latency_s: float) -> bool:
        """True when the measured p95 is within the target."""
        return self.p95_latency_s <= sla_latency_s

    def is_stable(self, sla_latency_s: float) -> bool:
        """True when the run shows no sign of an unbounded backlog.

        Two symptoms of an overloaded (unstable) configuration are checked:
        the tail latency of the *late* half of the run (a growing queue makes
        later queries strictly worse), and the time needed to drain the
        backlog after the last arrival.
        """
        drain_budget = max(2.0 * sla_latency_s, 0.25 * self.arrival_span_s)
        return (
            self.p95_late_window_s <= sla_latency_s and self.drain_s <= drain_budget
        )

    def acceptable(self, sla_latency_s: float) -> bool:
        """SLA met *and* the system is stable — the capacity-search criterion."""
        return self.meets_sla(sla_latency_s) and self.is_stable(sla_latency_s)


# Event kinds, ordered so that completions at time t are processed before
# arrivals at the same instant (frees cores first).
_EVT_CPU_DONE = 0
_EVT_GPU_DONE = 1
_EVT_ARRIVAL = 2


@dataclass
class _QueryState:
    query: Query
    outstanding_requests: int
    on_gpu: bool


class ServingSimulator:
    """Event-driven simulator for one inference server."""

    def __init__(self, engines: EnginePair, config: ServingConfig) -> None:
        self._engines = engines
        platform_cores = engines.cpu.platform.num_cores
        cores = config.num_cores if config.num_cores else platform_cores
        if cores > platform_cores:
            raise ValueError(
                f"num_cores={cores} exceeds platform core count {platform_cores}"
            )
        self._num_cores = cores
        self._config = config
        if config.offload_threshold is not None and not engines.has_accelerator:
            raise ValueError(
                "offload_threshold set but the engine pair has no accelerator"
            )

    @property
    def config(self) -> ServingConfig:
        """The scheduling configuration being simulated."""
        return self._config

    @property
    def num_cores(self) -> int:
        """Number of CPU worker cores simulated."""
        return self._num_cores

    # ------------------------------------------------------------------ #

    def run(self, queries: Sequence[Query]) -> SimulationResult:
        """Simulate serving ``queries`` and return aggregate measurements."""
        if not queries:
            raise ValueError("cannot simulate an empty query stream")
        config = self._config
        cpu_engine = self._engines.cpu
        gpu_engine = self._engines.gpu
        threshold = config.offload_threshold

        ordered = sorted(queries, key=lambda q: q.arrival_time)
        warmup_count = int(len(ordered) * config.warmup_fraction)
        warmup_ids = {q.query_id for q in ordered[:warmup_count]}

        counter = itertools.count()
        events: List[tuple] = []
        for query in ordered:
            heapq.heappush(
                events, (query.arrival_time, _EVT_ARRIVAL, next(counter), query)
            )

        cpu_queue: List = []  # FIFO of (query_id, request_batch)
        gpu_queue: List[int] = []  # FIFO of query ids
        states: Dict[int, _QueryState] = {}
        busy_cores = 0
        gpu_busy = False

        cpu_busy_time = 0.0
        gpu_busy_time = 0.0
        total_items = 0
        gpu_items = 0

        tracker = PercentileTracker()
        completion_times: Dict[int, float] = {}
        first_arrival = ordered[0].arrival_time
        last_completion = first_arrival
        now = first_arrival

        def dispatch_cpu(current_time: float) -> None:
            nonlocal busy_cores, cpu_busy_time
            while cpu_queue and busy_cores < self._num_cores:
                query_id, request_batch = cpu_queue.pop(0)
                busy_cores += 1
                service = cpu_engine.request_latency_s(request_batch, busy_cores)
                cpu_busy_time += service
                heapq.heappush(
                    events,
                    (current_time + service, _EVT_CPU_DONE, next(counter), query_id),
                )

        def dispatch_gpu(current_time: float) -> None:
            nonlocal gpu_busy, gpu_busy_time
            if gpu_busy or not gpu_queue:
                return
            query_id = gpu_queue.pop(0)
            gpu_busy = True
            service = gpu_engine.query_latency_s(states[query_id].query.size)
            gpu_busy_time += service
            heapq.heappush(
                events, (current_time + service, _EVT_GPU_DONE, next(counter), query_id)
            )

        def complete_query(query_id: int, current_time: float) -> None:
            nonlocal last_completion
            state = states[query_id]
            latency = current_time - state.query.arrival_time
            completion_times[query_id] = current_time
            last_completion = max(last_completion, current_time)
            if query_id not in warmup_ids:
                tracker.add(latency)

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _EVT_ARRIVAL:
                query: Query = payload
                total_items += query.size
                offload = (
                    threshold is not None
                    and gpu_engine is not None
                    and query.size > threshold
                )
                if offload:
                    states[query.query_id] = _QueryState(query, 0, True)
                    gpu_items += query.size
                    gpu_queue.append(query.query_id)
                    dispatch_gpu(now)
                else:
                    requests = split_query(query, config.batch_size)
                    states[query.query_id] = _QueryState(query, len(requests), False)
                    for request in requests:
                        cpu_queue.append((query.query_id, request.batch_size))
                    dispatch_cpu(now)
            elif kind == _EVT_CPU_DONE:
                query_id = payload
                busy_cores -= 1
                state = states[query_id]
                state.outstanding_requests -= 1
                if state.outstanding_requests == 0:
                    complete_query(query_id, now)
                dispatch_cpu(now)
            else:  # _EVT_GPU_DONE
                query_id = payload
                gpu_busy = False
                complete_query(query_id, now)
                dispatch_gpu(now)

        duration = max(last_completion - first_arrival, 1e-9)
        offered_duration = max(ordered[-1].arrival_time - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            raise ValueError(
                "no queries outside the warmup window; lower warmup_fraction or "
                "send more queries"
            )
        samples = tracker.samples()
        late_window = samples[len(samples) // 2 :]
        late_p95 = float(np.percentile(late_window, 95)) if late_window else 0.0
        return SimulationResult(
            config=config,
            num_queries=len(ordered),
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=len(ordered) / duration,
            offered_qps=len(ordered) / offered_duration,
            cpu_utilization=min(1.0, cpu_busy_time / (self._num_cores * duration)),
            gpu_utilization=min(1.0, gpu_busy_time / duration),
            gpu_work_fraction=(gpu_items / total_items) if total_items else 0.0,
            p95_late_window_s=late_p95,
            drain_s=max(0.0, last_completion - ordered[-1].arrival_time),
            arrival_span_s=offered_duration,
            latencies_s=samples,
        )
