"""Query-to-request splitting.

DeepRecSched's first optimisation knob is the per-request batch size: a query
of N candidate items is split into ``ceil(N / batch_size)`` requests that are
processed by parallel cores, trading batch-level parallelism (SIMD and DRAM
efficiency within a request) against request-level parallelism (more cores
working on the same query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.queries.query import Query
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Request:
    """One unit of work dispatched to a single CPU core.

    Attributes
    ----------
    query_id:
        The query this request belongs to.
    batch_size:
        Number of candidate items this request scores.
    index:
        Position of this request within its query's request list.
    """

    query_id: int
    batch_size: int
    index: int

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")


def split_query(query: Query, batch_size: int) -> List[Request]:
    """Split ``query`` into requests of at most ``batch_size`` items.

    The final request carries the remainder, so the sum of request batch
    sizes always equals the query size.
    """
    check_positive("batch_size", batch_size)
    requests: List[Request] = []
    remaining = query.size
    index = 0
    while remaining > 0:
        size = min(batch_size, remaining)
        requests.append(Request(query_id=query.query_id, batch_size=size, index=index))
        remaining -= size
        index += 1
    return requests


def num_requests(query_size: int, batch_size: int) -> int:
    """Number of requests a query of ``query_size`` items produces."""
    check_positive("query_size", query_size)
    check_positive("batch_size", batch_size)
    return -(-query_size // batch_size)
