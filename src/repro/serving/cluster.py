"""Fleet-scale serving: a multi-server cluster simulator with pluggable balancing.

The paper evaluates recommendation inference on production fleets of
heterogeneous servers, not on one machine.  :class:`ClusterSimulator` fans a
single query stream out across N simulated servers — each an independent
:class:`~repro.serving.simulator.ServerKernel`, optionally heterogeneous
(different platforms, core counts, batch sizes, with or without an attached
accelerator) — behind a pluggable load balancer, and aggregates fleet-level
tail latency, per-server utilisation, and QPS-at-SLA capacity.

Balancing decisions are made *online*, at each query's arrival instant,
against the servers' live outstanding-work counters; because every server
runs the same event mechanics as :class:`ServingSimulator` from a shared
event heap, a cluster of one server reproduces the single-server simulator's
measurements exactly.

Five balancing policies ship by default:

* ``random`` — assign each query to a uniformly random server, blind to load
  (the pre-partitioning scheme the datacenter simulation historically used);
* ``round-robin`` — cycle through servers regardless of load;
* ``least-outstanding`` — send each query to the server with the least
  outstanding work (items queued or in flight);
* ``weighted-least-outstanding`` — least outstanding work normalised by each
  node's speed factor, so a slow node carrying the same item count as a fast
  one is correctly seen as busier (weighted round-robin's load signal);
* ``power-of-two`` — sample two distinct servers uniformly and pick the less
  loaded one (the classic "power of two choices" scheme, which captures most
  of least-outstanding's benefit with O(1) state probes).
"""

from __future__ import annotations

import heapq
import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.execution.engine import EnginePair, build_cpu_engine
from repro.execution.scaled_engine import ScaledCPUEngine
from repro.faults.plan import (
    KIND_CRASH,
    KIND_RECOVER,
    KIND_SLOW_OFF,
    KIND_SLOW_ON,
    FaultPlan,
    FaultStats,
    NodeHealth,
    RetryPolicy,
)
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.serving.capacity import (
    CapacityCache,
    CapacityResult,
    estimate_upper_bound_qps,
    offload_size_stats,
)
from repro.serving.simulator import (
    EVT_CPU_DONE,
    CertainAcceptance,
    CertainRejection,
    SLACriteriaMixin,
    ServerKernel,
    ServingConfig,
    _INFINITY,
    _arrival_key,
    _check_latency_stats,
    _sketch_recorder,
    certain_acceptance_threshold,
    certain_rejection_threshold,
    late_window_p95,
    pause_gc,
    resolve_num_cores,
)
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_positive


# --------------------------------------------------------------------------- #
# Load-balancing policies
# --------------------------------------------------------------------------- #


class LoadBalancer(ABC):
    """Chooses the destination server for each arriving query.

    Balancers are stateful across one simulated run (``reset`` is called at
    the start of every :meth:`ClusterSimulator.run`) and observe the fleet
    through each kernel's live ``outstanding_items`` counter — the same
    signal a production balancer gets from per-backend in-flight counters.
    """

    #: Registry name of the policy (e.g. ``"round-robin"``).
    name: str = ""

    def prepare(self, servers: Sequence["ClusterServer"]) -> None:
        """Observe the fleet's static description before a run.

        Called by :meth:`ClusterSimulator.run` before :meth:`reset` with the
        fleet's :class:`ClusterServer` entries, so policies that weight their
        load signal by static node properties (speed factors, core counts)
        can precompute per-node weights.  The default is a no-op.
        """

    def reset(self, num_servers: int) -> None:
        """Prepare for a fresh run over ``num_servers`` servers."""

    def observe_health(self, health: Sequence[NodeHealth]) -> None:
        """Receive the fleet's live health view (fault-injected runs only).

        Called by :meth:`ClusterSimulator.run` once before the first arrival
        and again after every fault transition, with a per-node list of
        :class:`~repro.faults.NodeHealth` the simulator mutates in place —
        the production analogue of a balancer's health-check feed.  Runs
        without a :class:`~repro.faults.FaultPlan` never call this, so
        health-blind policies stay bit-identical.  The default is a no-op.
        """

    @abstractmethod
    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        """Index of the server that should execute ``query``."""


class RandomBalancer(LoadBalancer):
    """Assign each query to a uniformly random server, ignoring load.

    This is the legacy datacenter-cluster behaviour (random pre-partitioning
    of the stream) recast as an online policy, so the production-fleet
    experiments can compare it directly against load-aware balancing.  Like
    :class:`PowerOfTwoBalancer` it draws from the stdlib Mersenne-Twister
    generator — one bounded scalar per arrival on the hot path — and streams
    are seed-stable across platforms and Python versions.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)
        self._randrange = self._random.randrange

    def reset(self, num_servers: int) -> None:
        self._random.seed(self._seed)

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        return self._randrange(len(servers))


class RoundRobinBalancer(LoadBalancer):
    """Cycle through the fleet, ignoring load (the stateless baseline)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self, num_servers: int) -> None:
        self._next = 0

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        index = self._next % len(servers)
        self._next += 1
        return index


class LeastOutstandingBalancer(LoadBalancer):
    """Send each query to the server with the least outstanding work.

    Outstanding *items* (not query count) is the load signal, so a server
    chewing on one huge query is correctly seen as busier than one holding
    several small queries.  Ties break toward the lowest server index.
    """

    name = "least-outstanding"

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        # Equivalent to min(range(n), key=lambda i: (items, i)) but without
        # the per-query lambda/tuple allocations (this runs once per arrival).
        best_index = 0
        best_load = servers[0].outstanding_items
        for index in range(1, len(servers)):
            load = servers[index].outstanding_items
            if load < best_load:
                best_index = index
                best_load = load
        return best_index


class WeightedLeastOutstandingBalancer(LoadBalancer):
    """Least outstanding work normalised by each node's speed factor.

    ``outstanding_items`` counts *items*, but on a speed-heterogeneous fleet
    the same item count represents different amounts of remaining service
    time: a node whose ``speed_factor`` is 1.2 (20 % slower than nominal)
    holding 100 items is busier than a nominal node holding 110.  This
    policy weights each node's outstanding items by its service-time
    multiplier — the fleet analogue of weighted round-robin's capacity-aware
    load signal — and routes to the node with the least outstanding *work*.
    Nodes without a ``speed_factor`` (unscaled engines) weigh 1.0, so on a
    homogeneous fleet the policy degenerates to plain least-outstanding.
    Ties break toward the lowest server index.
    """

    name = "weighted-least-outstanding"

    def __init__(self) -> None:
        self._costs: List[float] = []
        self._prepared = False

    def prepare(self, servers: Sequence["ClusterServer"]) -> None:
        self._costs = [
            float(getattr(server.engines.cpu, "speed_factor", 1.0))
            for server in servers
        ]
        self._prepared = True

    def reset(self, num_servers: int) -> None:
        # Weights are valid for exactly one run: without a fresh prepare()
        # (e.g. bare kernels, or a reused instance pointed at a different
        # fleet) every node weighs 1.0 and the policy matches
        # least-outstanding exactly, instead of applying a stale fleet's
        # speed factors.
        if not self._prepared or len(self._costs) != num_servers:
            self._costs = [1.0] * num_servers
        self._prepared = False

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        costs = self._costs
        best_index = 0
        best_load = servers[0].outstanding_items * costs[0]
        for index in range(1, len(servers)):
            load = servers[index].outstanding_items * costs[index]
            if load < best_load:
                best_index = index
                best_load = load
        return best_index


class PowerOfTwoBalancer(LoadBalancer):
    """Probe two random servers, pick the less loaded (power-of-two-choices).

    Uses the stdlib Mersenne-Twister generator rather than a numpy
    ``Generator``: the balancer draws two bounded scalars per arriving query
    on the simulator's hot path, and ``random.Random.randrange`` is roughly
    an order of magnitude cheaper per scalar draw.  Streams are seed-stable
    across platforms and Python versions.
    """

    name = "power-of-two"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)
        self._randrange = self._random.randrange

    def reset(self, num_servers: int) -> None:
        self._random.seed(self._seed)

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        count = len(servers)
        if count == 1:
            return 0
        randrange = self._randrange
        first = randrange(count)
        second = randrange(count - 1)
        if second >= first:
            second += 1
        if servers[second].outstanding_items < servers[first].outstanding_items:
            return second
        return first


class FailureAwareBalancer(LoadBalancer):
    """Least outstanding work among *healthy* nodes, weighted by slowdown.

    The failure-aware counterpart of :class:`LeastOutstandingBalancer`: the
    simulator's health view (:meth:`LoadBalancer.observe_health`) marks
    crashed nodes, which are skipped entirely, and straggling nodes, whose
    outstanding items are weighted by their current ``slowdown`` so a node
    serving at a third of nominal speed is correctly seen as three times as
    busy.  Ties break toward the lowest server index.

    Without a health view — any run that injects no faults — every node is
    up with slowdown 1.0 and the policy is *exactly* least-outstanding
    (asserted in ``tests/test_faults.py``).  If the whole fleet is down the
    policy degrades to plain least-outstanding over all nodes: the dispatch
    is lost either way, and the retry layer decides what happens next.
    """

    name = "failure-aware"

    def __init__(self) -> None:
        self._health: Optional[Sequence[NodeHealth]] = None

    def reset(self, num_servers: int) -> None:
        # A health view is valid for exactly one run; the simulator pushes a
        # fresh one (via observe_health) after reset when faults are active.
        self._health = None

    def observe_health(self, health: Sequence[NodeHealth]) -> None:
        self._health = health

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        health = self._health
        if health is None:
            best_index = 0
            best_load = servers[0].outstanding_items
            for index in range(1, len(servers)):
                load = servers[index].outstanding_items
                if load < best_load:
                    best_index = index
                    best_load = load
            return best_index
        best_index = -1
        best_load = float("inf")
        for index in range(len(servers)):
            node = health[index]
            if not node.up:
                continue
            load = servers[index].outstanding_items * node.slowdown
            if load < best_load:
                best_index = index
                best_load = load
        if best_index >= 0:
            return best_index
        # Whole fleet down: any choice is lost; stay deterministic.
        best_index = 0
        best_load = servers[0].outstanding_items
        for index in range(1, len(servers)):
            load = servers[index].outstanding_items
            if load < best_load:
                best_index = index
                best_load = load
        return best_index


_BALANCER_REGISTRY = {
    RandomBalancer.name: RandomBalancer,
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastOutstandingBalancer.name: LeastOutstandingBalancer,
    WeightedLeastOutstandingBalancer.name: WeightedLeastOutstandingBalancer,
    PowerOfTwoBalancer.name: PowerOfTwoBalancer,
    FailureAwareBalancer.name: FailureAwareBalancer,
}

#: Policies whose decisions depend on a random stream (and hence on ``seed``).
_SEEDED_BALANCERS = (RandomBalancer, PowerOfTwoBalancer)


def available_balancers() -> List[str]:
    """Registered balancing-policy names, sorted."""
    return sorted(_BALANCER_REGISTRY)


def get_balancer(policy: Union[str, LoadBalancer], seed: int = 0) -> LoadBalancer:
    """Resolve a policy name (or pass through an instance) to a balancer.

    ``seed`` only affects randomised policies (random, power-of-two-choices).
    """
    if isinstance(policy, LoadBalancer):
        return policy
    key = str(policy).lower()
    if key not in _BALANCER_REGISTRY:
        raise KeyError(
            f"unknown balancing policy {policy!r}; available: {available_balancers()}"
        )
    factory = _BALANCER_REGISTRY[key]
    if factory in _SEEDED_BALANCERS:
        return factory(seed=seed)
    return factory()


# --------------------------------------------------------------------------- #
# Fleet description and results
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ClusterServer:
    """One server of the fleet: its engines plus its scheduling configuration."""

    engines: EnginePair
    config: ServingConfig
    name: str = ""


def homogeneous_fleet(
    engines: EnginePair, config: ServingConfig, num_servers: int
) -> List[ClusterServer]:
    """A fleet of ``num_servers`` identical servers sharing one engine pair.

    Engines are pure latency models, so sharing one instance across servers
    is safe; all per-run state lives in each server's kernel.
    """
    check_positive("num_servers", num_servers)
    return [
        ClusterServer(engines=engines, config=config, name=f"server-{index}")
        for index in range(num_servers)
    ]


def heterogeneous_fleet(
    model: str,
    config: ServingConfig,
    num_servers: int,
    platform_mix: Optional[Dict[str, float]] = None,
    speed_spread: float = 0.06,
    rng: SeedLike = None,
) -> List[ClusterServer]:
    """A fleet drawn from a platform mix with a per-node speed spread.

    Each server's platform is sampled from ``platform_mix`` (weights need not
    be normalised; default an even Skylake/Broadwell mix) and its engine is a
    :class:`~repro.execution.scaled_engine.ScaledCPUEngine` whose
    ``speed_factor`` is drawn uniformly from ``1 +- speed_spread`` — the
    within-generation heterogeneity (DVFS, memory population, co-located
    workloads) of a production fleet.  One nominal engine is built per
    distinct platform and shared by all its nodes, so the fleet shares one
    latency-table build per platform and every node stays on the dense fast
    path (the scaled view is exactly ``speed_factor x`` the base table).

    ``rng`` accepts a seed or a ``numpy.random.Generator``; the per-node
    draw order (platform, then speed factor) is stable, so a fleet is fully
    reproducible from its seed.
    """
    check_positive("num_servers", num_servers)
    if not 0.0 <= speed_spread < 0.5:
        raise ValueError(f"speed_spread must be in [0, 0.5), got {speed_spread}")
    mix = platform_mix if platform_mix is not None else {"skylake": 0.5, "broadwell": 0.5}
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("platform_mix weights must sum to a positive value")
    generator = derive_rng(rng)
    platform_names = list(mix)
    probabilities = np.array([mix[name] for name in platform_names]) / total
    base_engines: Dict[str, Any] = {}
    servers: List[ClusterServer] = []
    for index in range(num_servers):
        platform_name = str(generator.choice(platform_names, p=probabilities))
        speed_factor = float(1.0 + generator.uniform(-speed_spread, speed_spread))
        base = base_engines.get(platform_name)
        if base is None:
            base = build_cpu_engine(model, platform_name)
            base_engines[platform_name] = base
        servers.append(
            ClusterServer(
                engines=EnginePair(cpu=ScaledCPUEngine(base, speed_factor), gpu=None),
                config=config,
                name=f"node-{index}-{platform_name}",
            )
        )
    return servers


@dataclass(frozen=True)
class ServerLoadSummary:
    """Per-server slice of one cluster run."""

    name: str
    num_queries: int
    num_items: int
    cpu_utilization: float
    gpu_utilization: float
    gpu_work_fraction: float
    query_share: float


@dataclass
class ClusterSimulationResult(SLACriteriaMixin):
    """Fleet-level measurements from one cluster run.

    The SLA/stability acceptance criterion (``meets_sla`` / ``is_stable`` /
    ``acceptable``) is inherited from :class:`SLACriteriaMixin`, so fleet
    capacity searches judge runs by exactly the single-server rule — with
    one fault-aware refinement: a query lost to faults counts as an SLA
    miss (its latency is effectively infinite), so a balancer that
    blackholes traffic into a dead node cannot *flatter* its p95 by simply
    never completing the slow queries.  Runs with no failed queries use the
    inherited check verbatim.
    """

    policy: str
    num_servers: int
    num_queries: int
    measured_queries: int
    duration_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    achieved_qps: float
    offered_qps: float
    fleet_cpu_utilization: float
    per_server: List[ServerLoadSummary]
    p95_late_window_s: float = 0.0
    drain_s: float = 0.0
    arrival_span_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list, repr=False)
    #: Measured latencies per server (completion order), aligned with
    #: ``per_server``.  Only populated when the simulator was built with
    #: ``collect_per_server_latencies=True``.
    per_server_latencies: Optional[List[List[float]]] = field(
        default=None, repr=False
    )
    #: Fault-injection tally.  ``None`` on runs without a
    #: :class:`~repro.faults.FaultPlan`, so zero-plan results compare equal
    #: to pre-fault-support results field for field.
    fault_stats: Optional[FaultStats] = None

    @property
    def failed_queries(self) -> int:
        """Queries lost to faults after exhausting their retry budget."""
        return self.fault_stats.failed_queries if self.fault_stats else 0

    def meets_sla(self, sla_latency_s: float) -> bool:
        """p95 within target, with failed queries counted as SLA misses.

        A failed query never produces a latency sample, so judging a
        faulted run by the p95 of its *completions* rewards losing queries
        outright.  Instead the failed queries are folded back in at
        effectively infinite latency: the run meets the SLA only if at most
        5% of the *offered-and-measured* population (completions plus
        failures) missed it.  Fault-free runs (``failed_queries == 0``)
        take the inherited single-server check verbatim, keeping zero-plan
        results bit-identical.
        """
        if not self.failed_queries:
            return SLACriteriaMixin.meets_sla(self, sla_latency_s)
        if self.p95_latency_s > sla_latency_s:
            return False  # completions alone already miss the target
        over = self.failed_queries
        over += sum(1 for latency in self.latencies_s if latency > sla_latency_s)
        total = len(self.latencies_s) + self.failed_queries
        return over <= 0.05 * total

    def max_query_share(self) -> float:
        """Largest fraction of the stream any one server absorbed.

        0.0 when no per-server summaries exist (e.g. a result rebuilt from a
        partial serialisation) rather than raising on the empty ``max``.
        """
        if not self.per_server:
            return 0.0
        return max(summary.query_share for summary in self.per_server)


# --------------------------------------------------------------------------- #
# The cluster simulator
# --------------------------------------------------------------------------- #


class _FaultTrack:
    """Per-query fault bookkeeping, created lazily on first fault contact.

    Queries never touched by a fault (the overwhelming majority) have no
    track at all.  ``live`` counts dispatched attempts currently running on
    an up node; ``done`` flips when the query completes (first attempt wins)
    or permanently fails.
    """

    __slots__ = ("query", "attempts_left", "live", "done")

    def __init__(self, query: Query, attempts_left: int) -> None:
        self.query = query
        self.attempts_left = attempts_left
        self.live = 0
        self.done = False


def _healthy_least_loaded(
    kernels: Sequence[ServerKernel],
    health: Sequence[NodeHealth],
    exclude: int,
) -> int:
    """Least-loaded up node other than ``exclude``; -1 when none exists.

    The deterministic hedge-target rule: ties break toward the lowest index,
    so a fixed fault plan always hedges to the same nodes.
    """
    best_index = -1
    best_load = _INFINITY
    for index in range(len(kernels)):
        if index == exclude or not health[index].up:
            continue
        load = kernels[index].outstanding_items
        if load < best_load:
            best_index = index
            best_load = load
    return best_index


def _discard_latency(latency: float) -> None:
    """No-op recorder swapped in once a CertainAcceptance certificate fires.

    The streamed loop cannot jump into a separate drain function (the
    iterator's consumption checks still need to run), so it keeps the same
    loop and just stops retaining latencies.
    """


def _drain_cluster_events(
    events: List[tuple],
    ordered: Sequence[Query],
    cursor: int,
    next_arrival: float,
    kernels: Sequence[ServerKernel],
    choose: Any,
    policy: str,
    last_completion: float,
) -> float:
    """Run the cluster event loop to exhaustion without recording latencies.

    The fleet counterpart of the single-server drain: once a
    :class:`~repro.serving.simulator.CertainAcceptance` certificate fires,
    the remaining completions cannot change the verdict, but the drain time
    is part of the stability check, so the mechanics — balancer routing
    included, since it observes live outstanding-work counters — still run
    with per-query measurement skipped.  Returns the exact last completion.
    """
    heappop = heapq.heappop
    num_kernels = len(kernels)
    num_arrivals = len(ordered)
    while True:
        if events:
            head = events[0]
            now = head[0]
            if now <= next_arrival:
                _, kind, _, server_index, query_id = heappop(events)
                if kind == EVT_CPU_DONE:
                    if kernels[server_index].on_cpu_done(query_id, now) is None:
                        continue
                else:  # EVT_GPU_DONE
                    kernels[server_index].on_gpu_done(query_id, now)
                if now > last_completion:
                    last_completion = now
                continue
        if cursor >= num_arrivals:
            return last_completion
        query = ordered[cursor]
        cursor += 1
        next_arrival = (
            ordered[cursor].arrival_time if cursor < num_arrivals else _INFINITY
        )
        chosen = choose(query, kernels)
        if not 0 <= chosen < num_kernels:
            raise ValueError(
                f"balancer {policy!r} chose server {chosen} of {num_kernels}"
            )
        kernels[chosen].submit(query, query.arrival_time)


class ClusterSimulator:
    """Event-driven simulator for a fleet of inference servers.

    All servers share one event heap and one clock; the balancer routes each
    query at its arrival instant using the kernels' live outstanding-work
    counters, so balancing decisions see exactly the state a real balancer
    would.  With a single server every policy degenerates to pass-through and
    the run is event-for-event identical to :class:`ServingSimulator`.
    """

    def __init__(
        self,
        servers: Sequence[ClusterServer],
        balancer: Union[str, LoadBalancer] = "least-outstanding",
        warmup_fraction: Optional[float] = None,
        balancer_seed: int = 0,
        collect_per_server_latencies: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        latency_stats: str = "exact",
    ) -> None:
        if not servers:
            raise ValueError("a cluster needs at least one server")
        self._servers = [
            ClusterServer(
                engines=server.engines,
                config=server.config,
                name=server.name or f"server-{index}",
            )
            for index, server in enumerate(servers)
        ]
        # Validate every server's configuration up front (core counts,
        # offload thresholds) so a bad fleet fails fast, not mid-run.
        self._cores = [
            resolve_num_cores(server.engines, server.config) for server in self._servers
        ]
        self._balancer = get_balancer(balancer, seed=balancer_seed)
        if warmup_fraction is not None and not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self._warmup_fraction = warmup_fraction
        self._collect_per_server = collect_per_server_latencies
        # An empty plan is the "no faults" sentinel: run() then takes the
        # original code path, byte for byte, so zero-plan results stay
        # bit-identical to a simulator built without fault arguments.
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None
        self._fault_plan = fault_plan
        self._retry_policy = retry_policy or RetryPolicy()
        self._latency_stats = _check_latency_stats(latency_stats)
        if self._latency_stats == "sketch":
            # Sketch mode trades retained samples for fixed space; both of
            # these consumers exist to *retain* per-sample data, so the
            # combination is a contradiction, rejected up front.
            if collect_per_server_latencies:
                raise ValueError(
                    "latency_stats='sketch' does not retain samples; "
                    "collect_per_server_latencies requires the exact mode"
                )
            if self._fault_plan is not None:
                raise ValueError(
                    "latency_stats='sketch' is not supported with a fault "
                    "plan: faulted runs are figure-sized and their SLA "
                    "verdict folds failed queries back into the retained "
                    "samples (ClusterSimulationResult.meets_sla)"
                )

    @property
    def servers(self) -> List[ClusterServer]:
        """The fleet's server descriptions."""
        return list(self._servers)

    @property
    def num_servers(self) -> int:
        """Fleet size."""
        return len(self._servers)

    @property
    def policy(self) -> str:
        """Name of the active balancing policy."""
        return self._balancer.name or type(self._balancer).__name__

    @property
    def latency_stats(self) -> str:
        """``"exact"`` (default, retains samples) or ``"sketch"`` (fixed space)."""
        return self._latency_stats

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The injected fault plan, or ``None`` (empty plans normalise to None)."""
        return self._fault_plan

    @property
    def retry_policy(self) -> RetryPolicy:
        """What happens to queries caught on a crashed node."""
        return self._retry_policy

    # ------------------------------------------------------------------ #

    def run(
        self,
        queries: Sequence[Query],
        reject_above_sla_s: Optional[float] = None,
        accept_within_sla_s: Optional[float] = None,
    ) -> Union[ClusterSimulationResult, CertainRejection, CertainAcceptance]:
        """Serve ``queries`` across the fleet and return fleet measurements.

        ``reject_above_sla_s`` arms the exact early-rejection exit shared
        with :class:`~repro.serving.simulator.ServingSimulator`: the run
        stops with a :class:`~repro.serving.simulator.CertainRejection` once
        the full run's p95 provably exceeds the target, and always completes
        (bit-identically) otherwise.  Capacity searches use it to cut short
        overloaded probe evaluations whose results are discarded anyway.

        ``accept_within_sla_s`` arms the dual early-acceptance exit: once
        neither the full run's p95 nor its late-window p95 can end up over
        the target, recording stops, the event loop drains (balancer
        included), and a
        :class:`~repro.serving.simulator.CertainAcceptance` carrying the
        exact measured drain time is returned instead of full statistics.
        Fault-injected runs ignore it: queries lost to faults shrink the
        measured population after the fact, so a certificate computed from
        the zero-failure total would not be sound there — and the
        fault-aware SLA verdict additionally folds failures back in as
        misses, which no completion-count certificate can anticipate.

        With a non-empty :class:`~repro.faults.FaultPlan`, the run is
        delegated to the fault-injected loop: servers crash (losing in-flight
        work, handled per the :class:`~repro.faults.RetryPolicy`), recover,
        and straggle mid-trace, and the result carries a
        :class:`~repro.faults.FaultStats`.  Without a plan this method is the
        original loop, untouched — zero-plan runs are bit-identical to
        pre-fault-support builds (``tests/test_faults.py``).
        """
        if not queries:
            raise ValueError("cannot simulate an empty query stream")
        if self._fault_plan is not None:
            return self._run_with_faults(queries, reject_above_sla_s)

        ordered = sorted(queries, key=_arrival_key)
        warmup_fraction = (
            self._warmup_fraction
            if self._warmup_fraction is not None
            else self._servers[0].config.warmup_fraction
        )
        warmup_count = int(len(ordered) * warmup_fraction)
        warmup_ids = {q.query_id for q in ordered[:warmup_count]}
        measured_total = len(ordered) - warmup_count
        reject_sla = reject_above_sla_s if reject_above_sla_s is not None else _INFINITY
        reject_needed = certain_rejection_threshold(measured_total)
        over_sla = 0

        # Certain-acceptance bookkeeping (see ServingSimulator.run): the
        # late-window boundary is known up front in a no-fault run, so both
        # the whole-run and late-window certificates can be tracked.
        accept_armed = accept_within_sla_s is not None
        accept_sla = accept_within_sla_s if accept_armed else _INFINITY
        late_start = measured_total // 2
        accept_allowed = certain_acceptance_threshold(measured_total)
        accept_allowed_late = certain_acceptance_threshold(measured_total - late_start)
        accept_over = 0
        accept_over_late = 0

        # Arrivals are consumed straight from the sorted list with a cursor
        # (the balancer assigns their server at that point); only completions
        # go through the event heap, as (time, kind, seq, server, query_id).
        # A completion at time t is processed before an arrival at the same
        # instant, matching the EVT_* ordering of the all-in-one-heap form.
        counter = itertools.count()
        events: List[tuple] = []
        kernels = [
            ServerKernel(server.engines, server.config, cores, events, counter, index)
            for index, (server, cores) in enumerate(zip(self._servers, self._cores))
        ]
        self._balancer.prepare(self._servers)
        self._balancer.reset(len(kernels))

        first_arrival = ordered[0].arrival_time
        last_completion = first_arrival

        # Hot loop: bind everything to locals; the branch order matches the
        # event frequency (CPU completions > arrivals > GPU completions).
        # Measured latencies collect into a plain list and feed the tracker
        # in one vectorized pass after the run.
        heappop = heapq.heappop
        choose = self._balancer.choose
        measured_latencies: List[float] = []
        sketch_mode = self._latency_stats == "sketch"
        if sketch_mode:
            tracker = PercentileTracker(mode="sketch")
            late_tracker = PercentileTracker(mode="sketch")
            record, flush_chunks = _sketch_recorder(tracker, late_tracker, late_start)
        else:
            record = measured_latencies.append
        measured_count = 0
        per_server_latencies: Optional[List[List[float]]] = (
            [[] for _ in kernels] if self._collect_per_server else None
        )
        num_kernels = len(kernels)
        num_arrivals = len(ordered)
        cursor = 0
        next_arrival = first_arrival
        with pause_gc():
            while True:
                if events:
                    head = events[0]
                    now = head[0]
                    if now <= next_arrival:
                        _, kind, _, server_index, query_id = heappop(events)
                        if kind == EVT_CPU_DONE:
                            completed = kernels[server_index].on_cpu_done(query_id, now)
                            if completed is None:
                                continue
                        else:  # EVT_GPU_DONE
                            completed = kernels[server_index].on_gpu_done(query_id, now)
                        if now > last_completion:
                            last_completion = now
                        if completed.query_id not in warmup_ids:
                            latency = now - completed.arrival_time
                            record(latency)
                            measured_count += 1
                            if per_server_latencies is not None:
                                per_server_latencies[server_index].append(latency)
                            if latency > reject_sla:
                                over_sla += 1
                                if over_sla >= reject_needed:
                                    return CertainRejection(
                                        sla_latency_s=reject_sla,
                                        measured_queries=measured_count,
                                        over_sla_queries=over_sla,
                                    )
                            if accept_armed:
                                if latency > accept_sla:
                                    accept_over += 1
                                    if measured_count > late_start:
                                        accept_over_late += 1
                                remaining = measured_total - measured_count
                                if (
                                    accept_over + remaining <= accept_allowed
                                    and accept_over_late + remaining
                                    <= accept_allowed_late
                                ):
                                    last_completion = _drain_cluster_events(
                                        events,
                                        ordered,
                                        cursor,
                                        next_arrival,
                                        kernels,
                                        choose,
                                        self.policy,
                                        last_completion,
                                    )
                                    return CertainAcceptance(
                                        sla_latency_s=accept_sla,
                                        measured_queries=measured_count,
                                        over_sla_queries=accept_over,
                                        drain_s=max(
                                            0.0,
                                            last_completion
                                            - ordered[-1].arrival_time,
                                        ),
                                        arrival_span_s=max(
                                            ordered[-1].arrival_time - first_arrival,
                                            1e-9,
                                        ),
                                    )
                        continue
                if cursor >= num_arrivals:
                    break
                query = ordered[cursor]
                cursor += 1
                next_arrival = (
                    ordered[cursor].arrival_time if cursor < num_arrivals else _INFINITY
                )
                chosen = choose(query, kernels)
                if not 0 <= chosen < num_kernels:
                    raise ValueError(
                        f"balancer {self.policy!r} chose server {chosen} of "
                        f"{num_kernels}"
                    )
                kernels[chosen].submit(query, query.arrival_time)

        if sketch_mode:
            flush_chunks()
            samples: List[float] = []
        else:
            tracker = PercentileTracker()
            tracker.extend(measured_latencies)

        duration = max(last_completion - first_arrival, 1e-9)
        offered_duration = max(ordered[-1].arrival_time - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            raise ValueError(
                "no queries outside the warmup window; lower warmup_fraction or "
                "send more queries"
            )
        if sketch_mode:
            p95_late = (
                late_tracker.percentile(95) if late_tracker.raw_count else 0.0
            )
        else:
            samples = tracker.samples()
            p95_late = late_window_p95(samples)

        total_queries = len(ordered)
        per_server: List[ServerLoadSummary] = []
        total_core_busy = 0.0
        total_cores = 0
        for server, kernel in zip(self._servers, kernels):
            total_core_busy += kernel.cpu_busy_time
            total_cores += kernel.num_cores
            per_server.append(
                ServerLoadSummary(
                    name=server.name,
                    num_queries=kernel.num_submitted,
                    num_items=kernel.total_items,
                    cpu_utilization=min(
                        1.0, kernel.cpu_busy_time / (kernel.num_cores * duration)
                    ),
                    gpu_utilization=min(1.0, kernel.gpu_busy_time / duration),
                    gpu_work_fraction=(
                        kernel.gpu_items / kernel.total_items
                        if kernel.total_items
                        else 0.0
                    ),
                    query_share=kernel.num_submitted / total_queries,
                )
            )

        return ClusterSimulationResult(
            policy=self.policy,
            num_servers=len(kernels),
            num_queries=total_queries,
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=total_queries / duration,
            offered_qps=total_queries / offered_duration,
            fleet_cpu_utilization=min(1.0, total_core_busy / (total_cores * duration)),
            per_server=per_server,
            p95_late_window_s=p95_late,
            drain_s=max(0.0, last_completion - ordered[-1].arrival_time),
            arrival_span_s=offered_duration,
            latencies_s=samples,
            per_server_latencies=per_server_latencies,
        )

    # ------------------------------------------------------------------ #

    def run_stream(
        self,
        queries: Iterable[Query],
        num_queries: int,
        reject_above_sla_s: Optional[float] = None,
        accept_within_sla_s: Optional[float] = None,
    ) -> Union[ClusterSimulationResult, CertainRejection, CertainAcceptance]:
        """Serve a streamed query iterable without materialising the trace.

        The constant-memory companion to :meth:`run` for million-query
        traces: ``queries`` is consumed one arrival ahead of the event
        clock, so at any instant the simulator holds only the in-flight
        queries — pair it with the chunked synthesis iterators
        (:func:`repro.queries.trace.iter_diurnal_trace`) and
        ``latency_stats="sketch"`` and peak memory is O(1) in the trace
        length.  In exchange the stream must satisfy what :meth:`run`
        normalises for itself:

        * arrivals come **pre-sorted** by arrival time (the generator
          paths already emit them sorted);
        * ``query_id`` equals the arrival index (0, 1, 2, ...), which is
          how the generators number queries — the warmup window is the
          first ``num_queries * warmup_fraction`` arrivals, tested by id;
        * ``num_queries`` states the stream's exact length up front (the
          warmup count and the early-exit certificates need the total
          before the stream ends); a mismatch raises at the end.

        Fault plans are not supported — faulted runs retain samples for
        their SLA verdict and are figure-sized; use :meth:`run`.
        ``reject_above_sla_s`` / ``accept_within_sla_s`` arm the same exact
        early exits as :meth:`run`.
        """
        if self._fault_plan is not None:
            raise ValueError(
                "run_stream does not support fault injection; use run()"
            )
        check_positive("num_queries", num_queries)
        iterator = iter(queries)
        pending = next(iterator, None)
        if pending is None:
            raise ValueError("cannot simulate an empty query stream")

        warmup_fraction = (
            self._warmup_fraction
            if self._warmup_fraction is not None
            else self._servers[0].config.warmup_fraction
        )
        warmup_count = int(num_queries * warmup_fraction)
        measured_total = num_queries - warmup_count
        reject_sla = reject_above_sla_s if reject_above_sla_s is not None else _INFINITY
        reject_needed = certain_rejection_threshold(measured_total)
        over_sla = 0

        accept_armed = accept_within_sla_s is not None
        accept_sla = accept_within_sla_s if accept_armed else _INFINITY
        late_start = measured_total // 2
        accept_allowed = certain_acceptance_threshold(measured_total)
        accept_allowed_late = certain_acceptance_threshold(measured_total - late_start)
        accept_over = 0
        accept_over_late = 0

        counter = itertools.count()
        events: List[tuple] = []
        kernels = [
            ServerKernel(server.engines, server.config, cores, events, counter, index)
            for index, (server, cores) in enumerate(zip(self._servers, self._cores))
        ]
        self._balancer.prepare(self._servers)
        self._balancer.reset(len(kernels))

        first_arrival = pending.arrival_time
        last_arrival = first_arrival
        last_completion = first_arrival

        heappop = heapq.heappop
        choose = self._balancer.choose
        measured_latencies: List[float] = []
        sketch_mode = self._latency_stats == "sketch"
        if sketch_mode:
            tracker = PercentileTracker(mode="sketch")
            late_tracker = PercentileTracker(mode="sketch")
            record, flush_chunks = _sketch_recorder(tracker, late_tracker, late_start)
        else:
            record = measured_latencies.append
        measured_count = 0
        per_server_latencies: Optional[List[List[float]]] = (
            [[] for _ in kernels] if self._collect_per_server else None
        )
        num_kernels = len(kernels)
        consumed = 0
        next_arrival = first_arrival
        accepted: Optional[CertainAcceptance] = None
        with pause_gc():
            while True:
                if events:
                    head = events[0]
                    now = head[0]
                    if now <= next_arrival:
                        _, kind, _, server_index, query_id = heappop(events)
                        if kind == EVT_CPU_DONE:
                            completed = kernels[server_index].on_cpu_done(query_id, now)
                            if completed is None:
                                continue
                        else:  # EVT_GPU_DONE
                            completed = kernels[server_index].on_gpu_done(query_id, now)
                        if now > last_completion:
                            last_completion = now
                        if completed.query_id >= warmup_count:
                            latency = now - completed.arrival_time
                            record(latency)
                            measured_count += 1
                            if per_server_latencies is not None:
                                per_server_latencies[server_index].append(latency)
                            if latency > reject_sla:
                                over_sla += 1
                                if over_sla >= reject_needed:
                                    return CertainRejection(
                                        sla_latency_s=reject_sla,
                                        measured_queries=measured_count,
                                        over_sla_queries=over_sla,
                                    )
                            if accept_armed:
                                if latency > accept_sla:
                                    accept_over += 1
                                    if measured_count > late_start:
                                        accept_over_late += 1
                                remaining = measured_total - measured_count
                                if (
                                    accept_over + remaining <= accept_allowed
                                    and accept_over_late + remaining
                                    <= accept_allowed_late
                                ):
                                    # Certificate fired: stop recording, but
                                    # keep consuming and completing so the
                                    # drain time (and the stream-length
                                    # check) stays exact.
                                    accept_armed = False
                                    reject_sla = _INFINITY
                                    record = _discard_latency
                                    accepted = CertainAcceptance(
                                        sla_latency_s=accept_sla,
                                        measured_queries=measured_count,
                                        over_sla_queries=accept_over,
                                        drain_s=0.0,
                                        arrival_span_s=0.0,
                                    )
                        continue
                if pending is None:
                    break
                query = pending
                if query.query_id != consumed:
                    raise ValueError(
                        "run_stream requires query_id to equal the arrival "
                        f"index: got id {query.query_id} at position {consumed}"
                    )
                if query.arrival_time < last_arrival:
                    raise ValueError(
                        "run_stream requires arrivals pre-sorted by time: "
                        f"query {query.query_id} arrives at "
                        f"{query.arrival_time} after {last_arrival}"
                    )
                last_arrival = query.arrival_time
                consumed += 1
                pending = next(iterator, None)
                next_arrival = (
                    pending.arrival_time if pending is not None else _INFINITY
                )
                chosen = choose(query, kernels)
                if not 0 <= chosen < num_kernels:
                    raise ValueError(
                        f"balancer {self.policy!r} chose server {chosen} of "
                        f"{num_kernels}"
                    )
                kernels[chosen].submit(query, query.arrival_time)

        if consumed != num_queries:
            raise ValueError(
                f"num_queries={num_queries} but the stream yielded {consumed}"
            )
        offered_duration = max(last_arrival - first_arrival, 1e-9)
        if accepted is not None:
            return CertainAcceptance(
                sla_latency_s=accepted.sla_latency_s,
                measured_queries=accepted.measured_queries,
                over_sla_queries=accepted.over_sla_queries,
                drain_s=max(0.0, last_completion - last_arrival),
                arrival_span_s=offered_duration,
            )

        if sketch_mode:
            flush_chunks()
            samples: List[float] = []
        else:
            tracker = PercentileTracker()
            tracker.extend(measured_latencies)

        duration = max(last_completion - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            raise ValueError(
                "no queries outside the warmup window; lower warmup_fraction or "
                "send more queries"
            )
        if sketch_mode:
            p95_late = (
                late_tracker.percentile(95) if late_tracker.raw_count else 0.0
            )
        else:
            samples = tracker.samples()
            p95_late = late_window_p95(samples)

        per_server: List[ServerLoadSummary] = []
        total_core_busy = 0.0
        total_cores = 0
        for server, kernel in zip(self._servers, kernels):
            total_core_busy += kernel.cpu_busy_time
            total_cores += kernel.num_cores
            per_server.append(
                ServerLoadSummary(
                    name=server.name,
                    num_queries=kernel.num_submitted,
                    num_items=kernel.total_items,
                    cpu_utilization=min(
                        1.0, kernel.cpu_busy_time / (kernel.num_cores * duration)
                    ),
                    gpu_utilization=min(1.0, kernel.gpu_busy_time / duration),
                    gpu_work_fraction=(
                        kernel.gpu_items / kernel.total_items
                        if kernel.total_items
                        else 0.0
                    ),
                    query_share=kernel.num_submitted / num_queries,
                )
            )

        return ClusterSimulationResult(
            policy=self.policy,
            num_servers=num_kernels,
            num_queries=num_queries,
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=num_queries / duration,
            offered_qps=num_queries / offered_duration,
            fleet_cpu_utilization=min(1.0, total_core_busy / (total_cores * duration)),
            per_server=per_server,
            p95_late_window_s=p95_late,
            drain_s=max(0.0, last_completion - last_arrival),
            arrival_span_s=offered_duration,
            latencies_s=samples,
            per_server_latencies=per_server_latencies,
        )

    # ------------------------------------------------------------------ #

    def _run_with_faults(
        self,
        queries: Sequence[Query],
        reject_above_sla_s: Optional[float] = None,
    ) -> Union[ClusterSimulationResult, CertainRejection]:
        """The fault-injected event loop: four merged, deterministic streams.

        Completions (shared heap), fault transitions (the plan, pre-sorted),
        retry detections (their own small heap), and arrivals (sorted-list
        cursor) merge on simulated time; ties at one instant resolve in that
        order, so a fixed plan over a fixed trace replays bit-identically.

        Crash mechanics: a crashed kernel's heap *slot* is retired, so its
        already-pushed completions arrive as stale no-ops, and the kernel is
        rebound to a fresh slot for its life after recovery — one kernel per
        node for the whole run, which keeps busy-time/work accounting
        cumulative.  A down node still *exists* to health-blind balancers
        (cleared, outstanding 0 — they actively prefer it, which is exactly
        the naive-policy failure mode the degraded-fleet experiment shows);
        dispatches to it are black-holed and noticed ``detect_delay_s``
        later.
        """
        ordered = sorted(queries, key=_arrival_key)
        warmup_fraction = (
            self._warmup_fraction
            if self._warmup_fraction is not None
            else self._servers[0].config.warmup_fraction
        )
        warmup_count = int(len(ordered) * warmup_fraction)
        warmup_ids = {q.query_id for q in ordered[:warmup_count]}
        reject_sla = reject_above_sla_s if reject_above_sla_s is not None else _INFINITY
        # Computed from the zero-failure measured count: with failures the
        # true threshold only shrinks, so triggering on this larger count is
        # still an exact (never premature) rejection.
        reject_needed = certain_rejection_threshold(len(ordered) - warmup_count)
        over_sla = 0

        counter = itertools.count()
        events: List[tuple] = []
        kernels = [
            ServerKernel(server.engines, server.config, cores, events, counter, index)
            for index, (server, cores) in enumerate(zip(self._servers, self._cores))
        ]
        num_kernels = len(kernels)
        self._balancer.prepare(self._servers)
        self._balancer.reset(num_kernels)

        health = [NodeHealth() for _ in kernels]
        observe_health = self._balancer.observe_health
        observe_health(health)
        stats = FaultStats()
        retry_policy = self._retry_policy
        detect_delay = retry_policy.detect_delay_s
        max_retries = retry_policy.max_retries
        hedge = retry_policy.hedge

        transitions = self._fault_plan.events(num_kernels)
        num_transitions = len(transitions)
        t_cursor = 0
        next_transition = transitions[0].time_s if transitions else _INFINITY

        # Completion routing: slot -> node (None = retired slot, stale
        # events), node -> current slot.  Slots only grow, one per crash.
        slot_node: List[Optional[int]] = list(range(num_kernels))
        node_slot: List[int] = list(range(num_kernels))

        retry_heap: List[tuple] = []  # (due_time, seq, query_id)
        retry_seq = itertools.count()
        tracked: Dict[int, _FaultTrack] = {}

        heappop = heapq.heappop
        heappush = heapq.heappush
        choose = self._balancer.choose

        def handle_lost(query: Query, now: float) -> None:
            """One live attempt for ``query`` died with its node."""
            track = tracked.get(query.query_id)
            if track is None:
                track = _FaultTrack(query, max_retries)
                tracked[query.query_id] = track
            elif track.live > 0:
                track.live -= 1
            if track.done or track.live > 0:
                return  # already completed/failed, or a hedge twin survives
            if track.attempts_left > 0:
                heappush(
                    retry_heap,
                    (now + detect_delay, next(retry_seq), query.query_id),
                )
            else:
                track.done = True
                stats.failed_queries += 1

        def dispatch_retry(track: _FaultTrack, now: float) -> None:
            """Consume one retry: re-dispatch (optionally hedged)."""
            query = track.query
            track.attempts_left -= 1
            stats.retries += 1
            chosen = choose(query, kernels)
            if not 0 <= chosen < num_kernels:
                raise ValueError(
                    f"balancer {self.policy!r} chose server {chosen} of "
                    f"{num_kernels}"
                )
            if health[chosen].up:
                kernels[chosen].submit(query, now)
                track.live += 1
            else:
                stats.blackholed_dispatches += 1
            if hedge:
                second = _healthy_least_loaded(kernels, health, exclude=chosen)
                if second >= 0:
                    kernels[second].submit(query, now)
                    stats.hedged_dispatches += 1
                    track.live += 1
            if track.live == 0:
                if track.attempts_left > 0:
                    heappush(
                        retry_heap,
                        (now + detect_delay, next(retry_seq), query.query_id),
                    )
                else:
                    track.done = True
                    stats.failed_queries += 1

        first_arrival = ordered[0].arrival_time
        last_completion = first_arrival
        measured_latencies: List[float] = []
        record = measured_latencies.append
        per_server_latencies: Optional[List[List[float]]] = (
            [[] for _ in kernels] if self._collect_per_server else None
        )
        num_arrivals = len(ordered)
        cursor = 0
        next_arrival = first_arrival
        with pause_gc():
            while True:
                next_completion = events[0][0] if events else _INFINITY
                next_retry = retry_heap[0][0] if retry_heap else _INFINITY
                if (
                    events
                    and next_completion <= next_transition
                    and next_completion <= next_retry
                    and next_completion <= next_arrival
                ):
                    now, kind, _, slot, query_id = heappop(events)
                    node = slot_node[slot]
                    if node is None:
                        continue  # stale: pushed before its node crashed
                    if kind == EVT_CPU_DONE:
                        completed = kernels[node].on_cpu_done(query_id, now)
                        if completed is None:
                            continue
                    else:  # EVT_GPU_DONE
                        completed = kernels[node].on_gpu_done(query_id, now)
                    if now > last_completion:
                        last_completion = now
                    track = tracked.get(query_id)
                    if track is not None:
                        if track.done:
                            continue  # a hedge twin already finished first
                        track.done = True
                        track.live -= 1
                    if completed.query_id not in warmup_ids:
                        latency = now - completed.arrival_time
                        record(latency)
                        if per_server_latencies is not None:
                            per_server_latencies[node].append(latency)
                        if latency > reject_sla:
                            over_sla += 1
                            if over_sla >= reject_needed:
                                return CertainRejection(
                                    sla_latency_s=reject_sla,
                                    measured_queries=len(measured_latencies),
                                    over_sla_queries=over_sla,
                                )
                    continue
                if (
                    t_cursor < num_transitions
                    and next_transition <= next_retry
                    and next_transition <= next_arrival
                ):
                    transition = transitions[t_cursor]
                    t_cursor += 1
                    next_transition = (
                        transitions[t_cursor].time_s
                        if t_cursor < num_transitions
                        else _INFINITY
                    )
                    node = transition.node
                    kernel = kernels[node]
                    kind_t = transition.kind
                    if kind_t == KIND_CRASH:
                        if health[node].up:
                            health[node].up = False
                            stats.crashes += 1
                            old_slot = node_slot[node]
                            slot_node[old_slot] = None
                            new_slot = len(slot_node)
                            slot_node.append(node)
                            node_slot[node] = new_slot
                            kernel.set_server_index(new_slot)
                            lost = kernel.crash()
                            stats.crash_killed_in_flight += len(lost)
                            observe_health(health)
                            for query in lost:
                                handle_lost(query, transition.time_s)
                    elif kind_t == KIND_RECOVER:
                        if not health[node].up:
                            health[node].up = True
                            stats.recoveries += 1
                            observe_health(health)
                    elif kind_t == KIND_SLOW_ON:
                        kernel.service_scale = transition.slowdown
                        health[node].slowdown = transition.slowdown
                        observe_health(health)
                    else:  # KIND_SLOW_OFF
                        kernel.service_scale = 1.0
                        health[node].slowdown = 1.0
                        observe_health(health)
                    continue
                if retry_heap and next_retry <= next_arrival:
                    due, _, query_id = heappop(retry_heap)
                    track = tracked[query_id]
                    if not track.done and track.live == 0:
                        dispatch_retry(track, due)
                    continue
                if cursor >= num_arrivals:
                    break
                query = ordered[cursor]
                cursor += 1
                next_arrival = (
                    ordered[cursor].arrival_time if cursor < num_arrivals else _INFINITY
                )
                chosen = choose(query, kernels)
                if not 0 <= chosen < num_kernels:
                    raise ValueError(
                        f"balancer {self.policy!r} chose server {chosen} of "
                        f"{num_kernels}"
                    )
                if health[chosen].up:
                    kernels[chosen].submit(query, query.arrival_time)
                else:
                    # Black-holed: the dispatch is lost and noticed
                    # detect_delay_s later, where the retry budget decides.
                    stats.blackholed_dispatches += 1
                    track = _FaultTrack(query, max_retries)
                    tracked[query.query_id] = track
                    if track.attempts_left > 0:
                        heappush(
                            retry_heap,
                            (
                                query.arrival_time + detect_delay,
                                next(retry_seq),
                                query.query_id,
                            ),
                        )
                    else:
                        track.done = True
                        stats.failed_queries += 1

        tracker = PercentileTracker()
        tracker.extend(measured_latencies)

        duration = max(last_completion - first_arrival, 1e-9)
        offered_duration = max(ordered[-1].arrival_time - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            if reject_above_sla_s is not None:
                # A capacity probe where every measured query died (e.g. a
                # balancer blackholing the whole stream into a crashed
                # node): 100% of the offered population missed the SLA, so
                # the verdict is certain — reject, don't crash the search.
                return CertainRejection(
                    sla_latency_s=reject_above_sla_s,
                    measured_queries=0,
                    over_sla_queries=stats.failed_queries,
                )
            raise ValueError(
                "no queries completed outside the warmup window; lower the "
                "fault rates, the warmup_fraction, or send more queries"
            )
        samples = tracker.samples()

        total_queries = len(ordered)
        per_server: List[ServerLoadSummary] = []
        total_core_busy = 0.0
        total_cores = 0
        for server, kernel in zip(self._servers, kernels):
            total_core_busy += kernel.cpu_busy_time
            total_cores += kernel.num_cores
            per_server.append(
                ServerLoadSummary(
                    name=server.name,
                    num_queries=kernel.num_submitted,
                    num_items=kernel.total_items,
                    cpu_utilization=min(
                        1.0, kernel.cpu_busy_time / (kernel.num_cores * duration)
                    ),
                    gpu_utilization=min(1.0, kernel.gpu_busy_time / duration),
                    gpu_work_fraction=(
                        kernel.gpu_items / kernel.total_items
                        if kernel.total_items
                        else 0.0
                    ),
                    query_share=kernel.num_submitted / total_queries,
                )
            )

        return ClusterSimulationResult(
            policy=self.policy,
            num_servers=num_kernels,
            num_queries=total_queries,
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=total_queries / duration,
            offered_qps=total_queries / offered_duration,
            fleet_cpu_utilization=min(1.0, total_core_busy / (total_cores * duration)),
            per_server=per_server,
            p95_late_window_s=late_window_p95(samples),
            drain_s=max(0.0, last_completion - ordered[-1].arrival_time),
            arrival_span_s=offered_duration,
            latencies_s=samples,
            per_server_latencies=per_server_latencies,
            fault_stats=stats,
        )


# --------------------------------------------------------------------------- #
# Fleet capacity
# --------------------------------------------------------------------------- #


def estimate_fleet_upper_bound_qps(
    servers: Sequence[ClusterServer], load_generator: LoadGenerator
) -> float:
    """Optimistic fleet throughput bound: the sum of per-server bounds."""
    if not servers:
        raise ValueError("a cluster needs at least one server")
    sizes = load_generator.sizes
    mean_size = sizes.mean()
    total = 0.0
    for server in servers:
        large_fraction, mean_large = offload_size_stats(
            sizes, server.config.offload_threshold
        )
        total += estimate_upper_bound_qps(
            server.engines, server.config, mean_size, large_fraction, mean_large
        )
    return total


def warm_latency_tables(
    servers: Sequence[ClusterServer], max_query_size: Optional[int] = None
) -> None:
    """Pre-fill the engines' latency-table columns every kernel will index.

    Called before forking capacity-search workers so the (possibly shared)
    engines carry fully built tables into the child processes instead of
    each worker rebuilding them lazily.  ``max_query_size`` (e.g. the size
    distribution's ``max_size``) additionally warms the GPU query-size
    column of accelerator-attached servers that offload.
    """
    for server in servers:
        cores = resolve_num_cores(server.engines, server.config)
        cpu_table = getattr(server.engines.cpu, "latency_table", None)
        if cpu_table is not None:
            for active_cores in range(1, cores + 1):
                cpu_table.column(server.config.batch_size, active_cores)
        if (
            max_query_size
            and server.engines.gpu is not None
            and server.config.offload_threshold is not None
        ):
            gpu_table = getattr(server.engines.gpu, "latency_table", None)
            if gpu_table is not None:
                gpu_table.totals(max_query_size)


def find_cluster_max_qps(
    servers: Sequence[ClusterServer],
    balancer: Union[str, LoadBalancer],
    sla_latency_s: float,
    load_generator: LoadGenerator,
    num_queries: int = 600,
    iterations: int = 6,
    headroom: float = 1.3,
    max_queries: int = 8000,
    warmup_fraction: Optional[float] = None,
    balancer_seed: int = 0,
    jobs: int = 1,
    warm_start_cache: Union[CapacityCache, str, Path, None] = None,
    pool: Optional[Any] = None,
    bracket_hints: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    accept_early: bool = False,
) -> CapacityResult:
    """Bisection search for the fleet's maximum QPS under the p95 SLA.

    The fleet analogue of :func:`repro.serving.capacity.find_max_qps`: the
    offered stream is generated once per candidate rate and routed by the
    balancer, so the measured capacity includes balancing losses (a skewed
    policy saturates one server before the fleet is nominally full).

    A thin wrapper over :class:`repro.runtime.capacity.CapacitySearch`.
    With ``jobs > 1`` the candidate rates of each bisection round are
    evaluated speculatively on the invocation's shared worker pool (or
    ``pool``, if given), returning a result identical to the serial search
    in a fraction of the wall-clock time; servers and balancer must then be
    picklable.  Inside a pool worker the search silently runs serially —
    nested pools are never forked.

    ``warm_start_cache`` (a :class:`~repro.serving.capacity.CapacityCache`
    or a directory path, typically the sweep runner's cache directory)
    replays a previously recorded identical search — verified by one
    evaluation at the cached rate — and records this search's outcome for
    future runs.  Because the schema-versioned signature pins every decision
    input, a warm-started search returns **bit-identical** results to the
    cold serial run.  ``bracket_hints=True`` opts into the near-miss
    warm-start tier: adjacent entries (SLA, batch size, policy, scaled
    fleet size) tighten the initial bracket — fewer evaluations, same
    capacity within the cold search's bracket tolerance, not bit-identical
    (see :meth:`repro.runtime.capacity.CapacitySearch.run`).

    ``fault_plan`` / ``retry_policy`` inject a deterministic
    :class:`~repro.faults.FaultPlan` into every candidate-rate evaluation,
    so the measured capacity is the fleet's capacity *under* those faults;
    the plan is folded into the warm-start signature, so faulted and
    fault-free searches never share cache entries.

    ``accept_early=True`` arms the certain-acceptance exit on probe
    evaluations — same answer, bit-identical reported result, less
    simulated work per accepted probe (ignored under a fault plan).
    """
    check_positive("num_queries", num_queries)
    from repro.runtime.capacity import CapacitySearch

    return CapacitySearch.for_fleet(
        servers,
        balancer,
        sla_latency_s,
        load_generator,
        num_queries=num_queries,
        iterations=iterations,
        headroom=headroom,
        max_queries=max_queries,
        warmup_fraction=warmup_fraction,
        balancer_seed=balancer_seed,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        accept_early=accept_early,
    ).run(
        jobs=jobs,
        warm_start_cache=warm_start_cache,
        pool=pool,
        bracket_hints=bracket_hints,
    )
