"""Fleet-scale serving: a multi-server cluster simulator with pluggable balancing.

The paper evaluates recommendation inference on production fleets of
heterogeneous servers, not on one machine.  :class:`ClusterSimulator` fans a
single query stream out across N simulated servers — each an independent
:class:`~repro.serving.simulator.ServerKernel`, optionally heterogeneous
(different platforms, core counts, batch sizes, with or without an attached
accelerator) — behind a pluggable load balancer, and aggregates fleet-level
tail latency, per-server utilisation, and QPS-at-SLA capacity.

Balancing decisions are made *online*, at each query's arrival instant,
against the servers' live outstanding-work counters; because every server
runs the same event mechanics as :class:`ServingSimulator` from a shared
event heap, a cluster of one server reproduces the single-server simulator's
measurements exactly.

Three balancing policies ship by default:

* ``round-robin`` — cycle through servers regardless of load;
* ``least-outstanding`` — send each query to the server with the least
  outstanding work (items queued or in flight);
* ``power-of-two`` — sample two distinct servers uniformly and pick the less
  loaded one (the classic "power of two choices" scheme, which captures most
  of least-outstanding's benefit with O(1) state probes).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.serving.capacity import (
    CapacityResult,
    bisect_max_qps,
    estimate_upper_bound_qps,
    measurement_queries,
    offload_size_stats,
)
from repro.serving.simulator import (
    EVT_ARRIVAL,
    EVT_CPU_DONE,
    SLACriteriaMixin,
    ServerKernel,
    ServingConfig,
    late_window_p95,
    resolve_num_cores,
)
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_positive


# --------------------------------------------------------------------------- #
# Load-balancing policies
# --------------------------------------------------------------------------- #


class LoadBalancer(ABC):
    """Chooses the destination server for each arriving query.

    Balancers are stateful across one simulated run (``reset`` is called at
    the start of every :meth:`ClusterSimulator.run`) and observe the fleet
    through each kernel's live ``outstanding_items`` counter — the same
    signal a production balancer gets from per-backend in-flight counters.
    """

    #: Registry name of the policy (e.g. ``"round-robin"``).
    name: str = ""

    def reset(self, num_servers: int) -> None:
        """Prepare for a fresh run over ``num_servers`` servers."""

    @abstractmethod
    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        """Index of the server that should execute ``query``."""


class RoundRobinBalancer(LoadBalancer):
    """Cycle through the fleet, ignoring load (the stateless baseline)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self, num_servers: int) -> None:
        self._next = 0

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        index = self._next % len(servers)
        self._next += 1
        return index


class LeastOutstandingBalancer(LoadBalancer):
    """Send each query to the server with the least outstanding work.

    Outstanding *items* (not query count) is the load signal, so a server
    chewing on one huge query is correctly seen as busier than one holding
    several small queries.  Ties break toward the lowest server index.
    """

    name = "least-outstanding"

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        return min(range(len(servers)), key=lambda i: (servers[i].outstanding_items, i))


class PowerOfTwoBalancer(LoadBalancer):
    """Probe two random servers, pick the less loaded (power-of-two-choices)."""

    name = "power-of-two"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self, num_servers: int) -> None:
        self._rng = np.random.default_rng(self._seed)

    def choose(self, query: Query, servers: Sequence[ServerKernel]) -> int:
        count = len(servers)
        if count == 1:
            return 0
        first = int(self._rng.integers(count))
        second = int(self._rng.integers(count - 1))
        if second >= first:
            second += 1
        if servers[second].outstanding_items < servers[first].outstanding_items:
            return second
        return first


_BALANCER_REGISTRY = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastOutstandingBalancer.name: LeastOutstandingBalancer,
    PowerOfTwoBalancer.name: PowerOfTwoBalancer,
}


def available_balancers() -> List[str]:
    """Registered balancing-policy names, sorted."""
    return sorted(_BALANCER_REGISTRY)


def get_balancer(policy: Union[str, LoadBalancer], seed: int = 0) -> LoadBalancer:
    """Resolve a policy name (or pass through an instance) to a balancer.

    ``seed`` only affects randomised policies (power-of-two-choices).
    """
    if isinstance(policy, LoadBalancer):
        return policy
    key = str(policy).lower()
    if key not in _BALANCER_REGISTRY:
        raise KeyError(
            f"unknown balancing policy {policy!r}; available: {available_balancers()}"
        )
    factory = _BALANCER_REGISTRY[key]
    if factory is PowerOfTwoBalancer:
        return PowerOfTwoBalancer(seed=seed)
    return factory()


# --------------------------------------------------------------------------- #
# Fleet description and results
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ClusterServer:
    """One server of the fleet: its engines plus its scheduling configuration."""

    engines: EnginePair
    config: ServingConfig
    name: str = ""


def homogeneous_fleet(
    engines: EnginePair, config: ServingConfig, num_servers: int
) -> List[ClusterServer]:
    """A fleet of ``num_servers`` identical servers sharing one engine pair.

    Engines are pure latency models, so sharing one instance across servers
    is safe; all per-run state lives in each server's kernel.
    """
    check_positive("num_servers", num_servers)
    return [
        ClusterServer(engines=engines, config=config, name=f"server-{index}")
        for index in range(num_servers)
    ]


@dataclass(frozen=True)
class ServerLoadSummary:
    """Per-server slice of one cluster run."""

    name: str
    num_queries: int
    num_items: int
    cpu_utilization: float
    gpu_utilization: float
    gpu_work_fraction: float
    query_share: float


@dataclass
class ClusterSimulationResult(SLACriteriaMixin):
    """Fleet-level measurements from one cluster run.

    The SLA/stability acceptance criterion (``meets_sla`` / ``is_stable`` /
    ``acceptable``) is inherited from :class:`SLACriteriaMixin`, so fleet
    capacity searches judge runs by exactly the single-server rule.
    """

    policy: str
    num_servers: int
    num_queries: int
    measured_queries: int
    duration_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    achieved_qps: float
    offered_qps: float
    fleet_cpu_utilization: float
    per_server: List[ServerLoadSummary]
    p95_late_window_s: float = 0.0
    drain_s: float = 0.0
    arrival_span_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list, repr=False)

    def max_query_share(self) -> float:
        """Largest fraction of the stream any one server absorbed."""
        return max(summary.query_share for summary in self.per_server)


# --------------------------------------------------------------------------- #
# The cluster simulator
# --------------------------------------------------------------------------- #


class ClusterSimulator:
    """Event-driven simulator for a fleet of inference servers.

    All servers share one event heap and one clock; the balancer routes each
    query at its arrival instant using the kernels' live outstanding-work
    counters, so balancing decisions see exactly the state a real balancer
    would.  With a single server every policy degenerates to pass-through and
    the run is event-for-event identical to :class:`ServingSimulator`.
    """

    def __init__(
        self,
        servers: Sequence[ClusterServer],
        balancer: Union[str, LoadBalancer] = "least-outstanding",
        warmup_fraction: Optional[float] = None,
        balancer_seed: int = 0,
    ) -> None:
        if not servers:
            raise ValueError("a cluster needs at least one server")
        self._servers = [
            ClusterServer(
                engines=server.engines,
                config=server.config,
                name=server.name or f"server-{index}",
            )
            for index, server in enumerate(servers)
        ]
        # Validate every server's configuration up front (core counts,
        # offload thresholds) so a bad fleet fails fast, not mid-run.
        self._cores = [
            resolve_num_cores(server.engines, server.config) for server in self._servers
        ]
        self._balancer = get_balancer(balancer, seed=balancer_seed)
        if warmup_fraction is not None and not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self._warmup_fraction = warmup_fraction

    @property
    def servers(self) -> List[ClusterServer]:
        """The fleet's server descriptions."""
        return list(self._servers)

    @property
    def num_servers(self) -> int:
        """Fleet size."""
        return len(self._servers)

    @property
    def policy(self) -> str:
        """Name of the active balancing policy."""
        return self._balancer.name or type(self._balancer).__name__

    # ------------------------------------------------------------------ #

    def run(self, queries: Sequence[Query]) -> ClusterSimulationResult:
        """Serve ``queries`` across the fleet and return fleet measurements."""
        if not queries:
            raise ValueError("cannot simulate an empty query stream")

        ordered = sorted(queries, key=lambda q: q.arrival_time)
        warmup_fraction = (
            self._warmup_fraction
            if self._warmup_fraction is not None
            else self._servers[0].config.warmup_fraction
        )
        warmup_count = int(len(ordered) * warmup_fraction)
        warmup_ids = {q.query_id for q in ordered[:warmup_count]}

        counter = itertools.count()
        # Events carry (time, kind, seq, server_index, payload); arrivals use
        # server_index -1 because the balancer assigns them at pop time.
        events: List[tuple] = []
        for query in ordered:
            heapq.heappush(
                events, (query.arrival_time, EVT_ARRIVAL, next(counter), -1, query)
            )

        def make_schedule(server_index: int) -> Callable[[float, int, int], None]:
            def schedule(time: float, kind: int, query_id: int) -> None:
                heapq.heappush(events, (time, kind, next(counter), server_index, query_id))

            return schedule

        kernels = [
            ServerKernel(server.engines, server.config, cores, make_schedule(index))
            for index, (server, cores) in enumerate(zip(self._servers, self._cores))
        ]
        self._balancer.reset(len(kernels))

        tracker = PercentileTracker()
        first_arrival = ordered[0].arrival_time
        last_completion = first_arrival

        while events:
            now, kind, _, server_index, payload = heapq.heappop(events)
            if kind == EVT_ARRIVAL:
                chosen = self._balancer.choose(payload, kernels)
                if not 0 <= chosen < len(kernels):
                    raise ValueError(
                        f"balancer {self.policy!r} chose server {chosen} of "
                        f"{len(kernels)}"
                    )
                kernels[chosen].submit(payload, now)
                continue
            if kind == EVT_CPU_DONE:
                completed = kernels[server_index].on_cpu_done(payload, now)
            else:  # EVT_GPU_DONE
                completed = kernels[server_index].on_gpu_done(payload, now)
            if completed is not None:
                last_completion = max(last_completion, now)
                if completed.query_id not in warmup_ids:
                    tracker.add(now - completed.arrival_time)

        duration = max(last_completion - first_arrival, 1e-9)
        offered_duration = max(ordered[-1].arrival_time - first_arrival, 1e-9)
        measured = tracker.count
        if measured == 0:
            raise ValueError(
                "no queries outside the warmup window; lower warmup_fraction or "
                "send more queries"
            )
        samples = tracker.samples()

        total_queries = len(ordered)
        per_server: List[ServerLoadSummary] = []
        total_core_busy = 0.0
        total_cores = 0
        for server, kernel in zip(self._servers, kernels):
            total_core_busy += kernel.cpu_busy_time
            total_cores += kernel.num_cores
            per_server.append(
                ServerLoadSummary(
                    name=server.name,
                    num_queries=kernel.num_submitted,
                    num_items=kernel.total_items,
                    cpu_utilization=min(
                        1.0, kernel.cpu_busy_time / (kernel.num_cores * duration)
                    ),
                    gpu_utilization=min(1.0, kernel.gpu_busy_time / duration),
                    gpu_work_fraction=(
                        kernel.gpu_items / kernel.total_items
                        if kernel.total_items
                        else 0.0
                    ),
                    query_share=kernel.num_submitted / total_queries,
                )
            )

        return ClusterSimulationResult(
            policy=self.policy,
            num_servers=len(kernels),
            num_queries=total_queries,
            measured_queries=measured,
            duration_s=duration,
            p50_latency_s=tracker.p50(),
            p95_latency_s=tracker.p95(),
            p99_latency_s=tracker.p99(),
            mean_latency_s=tracker.mean(),
            achieved_qps=total_queries / duration,
            offered_qps=total_queries / offered_duration,
            fleet_cpu_utilization=min(1.0, total_core_busy / (total_cores * duration)),
            per_server=per_server,
            p95_late_window_s=late_window_p95(samples),
            drain_s=max(0.0, last_completion - ordered[-1].arrival_time),
            arrival_span_s=offered_duration,
            latencies_s=samples,
        )


# --------------------------------------------------------------------------- #
# Fleet capacity
# --------------------------------------------------------------------------- #


def estimate_fleet_upper_bound_qps(
    servers: Sequence[ClusterServer], load_generator: LoadGenerator
) -> float:
    """Optimistic fleet throughput bound: the sum of per-server bounds."""
    if not servers:
        raise ValueError("a cluster needs at least one server")
    sizes = load_generator.sizes
    mean_size = sizes.mean()
    total = 0.0
    for server in servers:
        large_fraction, mean_large = offload_size_stats(
            sizes, server.config.offload_threshold
        )
        total += estimate_upper_bound_qps(
            server.engines, server.config, mean_size, large_fraction, mean_large
        )
    return total


def find_cluster_max_qps(
    servers: Sequence[ClusterServer],
    balancer: Union[str, LoadBalancer],
    sla_latency_s: float,
    load_generator: LoadGenerator,
    num_queries: int = 600,
    iterations: int = 6,
    headroom: float = 1.3,
    max_queries: int = 8000,
    warmup_fraction: Optional[float] = None,
    balancer_seed: int = 0,
) -> CapacityResult:
    """Bisection search for the fleet's maximum QPS under the p95 SLA.

    The fleet analogue of :func:`repro.serving.capacity.find_max_qps`: the
    offered stream is generated once per candidate rate and routed by the
    balancer, so the measured capacity includes balancing losses (a skewed
    policy saturates one server before the fleet is nominally full).
    """
    check_positive("num_queries", num_queries)
    simulator = ClusterSimulator(
        servers,
        balancer=balancer,
        warmup_fraction=warmup_fraction,
        balancer_seed=balancer_seed,
    )
    upper = headroom * estimate_fleet_upper_bound_qps(servers, load_generator)

    def evaluate(rate_qps: float) -> ClusterSimulationResult:
        generator = load_generator.with_rate(rate_qps)
        count = measurement_queries(rate_qps, sla_latency_s, num_queries, max_queries)
        return simulator.run(generator.generate(count))

    return bisect_max_qps(evaluate, upper, sla_latency_s, iterations)
