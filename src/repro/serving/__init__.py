"""At-scale serving: SLA targets, query splitting, event-driven simulation, capacity search."""

from repro.serving.capacity import (
    CapacityCache,
    CapacityResult,
    bisect_max_qps,
    bisect_max_qps_batched,
    estimate_upper_bound_qps,
    find_max_qps,
)
from repro.serving.cluster import (
    ClusterServer,
    ClusterSimulationResult,
    ClusterSimulator,
    LeastOutstandingBalancer,
    LoadBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    ServerLoadSummary,
    available_balancers,
    estimate_fleet_upper_bound_qps,
    find_cluster_max_qps,
    get_balancer,
    homogeneous_fleet,
    warm_latency_tables,
)
from repro.serving.request import Request, num_requests, split_query
from repro.serving.simulator import (
    ServerKernel,
    ServingConfig,
    ServingSimulator,
    SimulationResult,
)
from repro.serving.sla import SLATarget, SLATier, TIER_MULTIPLIERS, sla_target, sla_targets

__all__ = [
    "CapacityCache",
    "CapacityResult",
    "bisect_max_qps",
    "bisect_max_qps_batched",
    "estimate_upper_bound_qps",
    "find_max_qps",
    "ClusterServer",
    "ClusterSimulationResult",
    "ClusterSimulator",
    "LeastOutstandingBalancer",
    "LoadBalancer",
    "PowerOfTwoBalancer",
    "RoundRobinBalancer",
    "ServerLoadSummary",
    "available_balancers",
    "estimate_fleet_upper_bound_qps",
    "find_cluster_max_qps",
    "get_balancer",
    "homogeneous_fleet",
    "warm_latency_tables",
    "Request",
    "num_requests",
    "split_query",
    "ServerKernel",
    "ServingConfig",
    "ServingSimulator",
    "SimulationResult",
    "SLATarget",
    "SLATier",
    "TIER_MULTIPLIERS",
    "sla_target",
    "sla_targets",
]
