"""At-scale serving: SLA targets, query splitting, event-driven simulation, capacity search."""

from repro.serving.capacity import CapacityResult, estimate_upper_bound_qps, find_max_qps
from repro.serving.request import Request, num_requests, split_query
from repro.serving.simulator import ServingConfig, ServingSimulator, SimulationResult
from repro.serving.sla import SLATarget, SLATier, TIER_MULTIPLIERS, sla_target, sla_targets

__all__ = [
    "CapacityResult",
    "estimate_upper_bound_qps",
    "find_max_qps",
    "Request",
    "num_requests",
    "split_query",
    "ServingConfig",
    "ServingSimulator",
    "SimulationResult",
    "SLATarget",
    "SLATier",
    "TIER_MULTIPLIERS",
    "sla_target",
    "sla_targets",
]
