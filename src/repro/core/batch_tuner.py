"""DeepRecSched-CPU: per-request batch-size tuning.

Implements the first half of the DeepRecSched algorithm (Section IV-C): start
from a unit batch size and hill-climb over increasing batch sizes, measuring
the latency-bounded throughput (max QPS under the p95 SLA) of each candidate
with the serving simulator, and stop once throughput degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.hill_climber import ClimbResult, hill_climb, power_of_two_candidates
from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import MAX_QUERY_SIZE
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BatchTuningResult:
    """Outcome of one batch-size tuning run."""

    best_batch_size: int
    best_qps: float
    sla_latency_s: float
    qps_by_batch_size: Dict[int, float]

    @property
    def num_evaluations(self) -> int:
        """Number of batch sizes the hill climb evaluated."""
        return len(self.qps_by_batch_size)


class BatchSizeTuner:
    """Hill-climbing batch-size tuner (the CPU half of DeepRecSched)."""

    def __init__(
        self,
        engines: EnginePair,
        load_generator: LoadGenerator,
        num_cores: int = 0,
        num_queries: int = 800,
        capacity_iterations: int = 6,
        min_batch_size: int = 1,
        max_batch_size: int = MAX_QUERY_SIZE,
        patience: int = 2,
    ) -> None:
        check_positive("num_queries", num_queries)
        check_positive("capacity_iterations", capacity_iterations)
        check_positive("min_batch_size", min_batch_size)
        check_positive("max_batch_size", max_batch_size)
        if max_batch_size < min_batch_size:
            raise ValueError(
                f"max_batch_size {max_batch_size} < min_batch_size {min_batch_size}"
            )
        self._engines = engines
        self._load_generator = load_generator
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._min_batch_size = min_batch_size
        self._max_batch_size = max_batch_size
        self._patience = patience

    def candidates(self) -> List[int]:
        """Batch-size candidates explored by the hill climb (powers of two)."""
        return power_of_two_candidates(self._min_batch_size, self._max_batch_size)

    def capacity_at(self, batch_size: int, sla_latency_s: float) -> float:
        """Max QPS under the SLA at one batch size (a single objective evaluation)."""
        config = ServingConfig(batch_size=batch_size, num_cores=self._num_cores)
        outcome = find_max_qps(
            self._engines,
            config,
            sla_latency_s,
            self._load_generator,
            num_queries=self._num_queries,
            iterations=self._capacity_iterations,
        )
        return outcome.max_qps

    def tune(self, sla_latency_s: float) -> BatchTuningResult:
        """Run the hill climb and return the best batch size with its QPS."""
        check_positive("sla_latency_s", sla_latency_s)
        climb: ClimbResult = hill_climb(
            self.candidates(),
            lambda batch: self.capacity_at(batch, sla_latency_s),
            patience=self._patience,
        )
        return BatchTuningResult(
            best_batch_size=climb.best_candidate,
            best_qps=climb.best_value,
            sla_latency_s=sla_latency_s,
            qps_by_batch_size=climb.as_dict(),
        )
