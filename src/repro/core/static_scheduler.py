"""Static production baseline scheduler.

The baseline DeepRecSched is compared against (Section V) uses a *fixed*
per-request batch size chosen so that the largest possible query splits
evenly across all available cores — e.g. with a maximum query size of 1000
candidates on a 40-core Skylake, the static batch size is 25.  It never
offloads to an accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CPUPlatform
from repro.queries.size_dist import MAX_QUERY_SIZE
from repro.serving.simulator import ServingConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StaticSchedulerPolicy:
    """Fixed batch-size policy derived from the worst-case query."""

    max_query_size: int = MAX_QUERY_SIZE

    def __post_init__(self) -> None:
        check_positive("max_query_size", self.max_query_size)

    def batch_size(self, platform: CPUPlatform, num_cores: int = 0) -> int:
        """Fixed batch size: the largest query split evenly over the cores."""
        cores = num_cores if num_cores else platform.num_cores
        check_positive("num_cores", cores)
        return max(1, -(-self.max_query_size // cores))

    def serving_config(
        self, platform: CPUPlatform, num_cores: int = 0, warmup_fraction: float = 0.1
    ) -> ServingConfig:
        """The baseline's :class:`ServingConfig` (no accelerator offload)."""
        return ServingConfig(
            batch_size=self.batch_size(platform, num_cores),
            num_cores=num_cores,
            offload_threshold=None,
            warmup_fraction=warmup_fraction,
        )


def static_batch_size(platform: CPUPlatform, max_query_size: int = MAX_QUERY_SIZE) -> int:
    """Convenience wrapper: the baseline's fixed batch size for ``platform``."""
    return StaticSchedulerPolicy(max_query_size).batch_size(platform)
