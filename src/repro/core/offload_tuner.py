"""DeepRecSched-GPU: accelerator query-size-threshold tuning.

The second half of the DeepRecSched algorithm (Section IV-C): with the CPU
batch size fixed by :class:`~repro.core.batch_tuner.BatchSizeTuner`, start
from a unit query-size threshold (every query offloaded to the accelerator)
and hill-climb over increasing thresholds — shrinking the share of work on
the accelerator — until the latency-bounded throughput stops improving.

:class:`FleetKnobTuner` lifts the same tuning loop to a whole fleet: it
co-tunes the fleet-wide batch size with the load-balancing policy (and,
for accelerator-attached fleets, the offload threshold) against the
cluster's QPS-at-SLA capacity via coordinate descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.hill_climber import (
    ClimbResult,
    DescentResult,
    coordinate_descent,
    hill_climb,
    power_of_two_candidates,
)
from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import MAX_QUERY_SIZE
from repro.runtime.pool import Future, TaskContext, WorkerPool, pool_scope
from repro.serving.capacity import find_max_qps
from repro.serving.cluster import ClusterServer, available_balancers, find_cluster_max_qps
from repro.serving.simulator import ServingConfig, SimulationResult
from repro.utils.validation import check_positive


def _tuner_fleet(
    engines_per_server: Sequence[EnginePair],
    num_cores: int,
    batch_size: int,
    threshold: Optional[int],
) -> List[ClusterServer]:
    """The fleet one knob assignment describes (shared by parent and workers)."""
    servers = []
    for index, engines in enumerate(engines_per_server):
        config = ServingConfig(
            batch_size=batch_size,
            num_cores=num_cores,
            offload_threshold=threshold if engines.has_accelerator else None,
        )
        servers.append(
            ClusterServer(engines=engines, config=config, name=f"server-{index}")
        )
    return servers


def _build_tuner_state(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Per-worker tuner evaluator state (the parent builds the same shape).

    The warm-start cache is materialised here so each worker (and the
    parent) holds one :class:`~repro.serving.capacity.CapacityCache`
    instance across all of its evaluations — the in-process memo and
    near-miss tiers need instance continuity to pay off.
    """
    from repro.serving.capacity import CapacityCache

    state = dict(payload)
    state["cache"] = (
        CapacityCache(payload["warm_start_cache"])
        if payload["warm_start_cache"] is not None
        else None
    )
    return state


def _evaluate_tuner_point(state: Dict[str, Any], knobs: Dict[str, Any]) -> float:
    """Objective of one knob assignment: the fleet's capacity at the SLA.

    Runs the capacity search serially (``jobs=1``) — parallelism lives at
    the cross-point layer, where several assignments' searches share the
    pool — so a pool worker and the parent compute identical values.
    """
    servers = _tuner_fleet(
        state["engines"], state["num_cores"], knobs["batch_size"],
        knobs.get("offload_threshold"),
    )
    outcome = find_cluster_max_qps(
        servers,
        knobs["policy"],
        state["sla_latency_s"],
        state["load_generator"],
        num_queries=state["num_queries"],
        iterations=state["capacity_iterations"],
        warm_start_cache=state["cache"],
        bracket_hints=state["bracket_hints"],
    )
    return outcome.max_qps


def offload_threshold_candidates(max_threshold: int = MAX_QUERY_SIZE) -> List[int]:
    """The DeepRecSched threshold ladder: unit threshold, then powers of two.

    Starts at 1 (every query offloaded, exactly as Section IV-C describes)
    and climbs through power-of-two thresholds from 16 up; thresholds in
    (1, 16) sit below the bulk of the query-size distribution and route
    essentially everything to the accelerator, so the ladder skips them.
    Shared by the single-server and fleet tuners so their search spaces
    cannot diverge.
    """
    check_positive("max_threshold", max_threshold)
    return [1] + power_of_two_candidates(16, max_threshold)


@dataclass(frozen=True)
class OffloadTuningResult:
    """Outcome of one query-size-threshold tuning run."""

    best_threshold: int
    best_qps: float
    batch_size: int
    sla_latency_s: float
    qps_by_threshold: Dict[int, float]
    gpu_work_fraction: float

    @property
    def num_evaluations(self) -> int:
        """Number of thresholds the hill climb evaluated."""
        return len(self.qps_by_threshold)


class OffloadThresholdTuner:
    """Hill-climbing query-size-threshold tuner (the GPU half of DeepRecSched)."""

    def __init__(
        self,
        engines: EnginePair,
        load_generator: LoadGenerator,
        num_cores: int = 0,
        num_queries: int = 800,
        capacity_iterations: int = 6,
        max_threshold: int = MAX_QUERY_SIZE,
        patience: int = 4,
    ) -> None:
        if not engines.has_accelerator:
            raise ValueError("offload tuning requires an accelerator engine")
        check_positive("num_queries", num_queries)
        check_positive("capacity_iterations", capacity_iterations)
        check_positive("max_threshold", max_threshold)
        self._engines = engines
        self._load_generator = load_generator
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._max_threshold = max_threshold
        self._patience = patience

    def candidates(self) -> List[int]:
        """Threshold candidates explored by the hill climb.

        See :func:`offload_threshold_candidates` for the ladder's rationale.
        """
        return offload_threshold_candidates(self._max_threshold)

    def _evaluate(
        self, threshold: int, batch_size: int, sla_latency_s: float
    ) -> tuple:
        config = ServingConfig(
            batch_size=batch_size,
            num_cores=self._num_cores,
            offload_threshold=threshold,
        )
        outcome = find_max_qps(
            self._engines,
            config,
            sla_latency_s,
            self._load_generator,
            num_queries=self._num_queries,
            iterations=self._capacity_iterations,
        )
        return outcome.max_qps, outcome.result

    def tune(self, batch_size: int, sla_latency_s: float) -> OffloadTuningResult:
        """Run the hill climb over thresholds at a fixed CPU batch size."""
        check_positive("batch_size", batch_size)
        check_positive("sla_latency_s", sla_latency_s)
        results: Dict[int, Optional[SimulationResult]] = {}

        def objective(threshold: int) -> float:
            qps, result = self._evaluate(threshold, batch_size, sla_latency_s)
            results[threshold] = result
            return qps

        climb: ClimbResult = hill_climb(
            self.candidates(), objective, patience=self._patience
        )
        best_result = results.get(climb.best_candidate)
        gpu_fraction = best_result.gpu_work_fraction if best_result is not None else 0.0
        return OffloadTuningResult(
            best_threshold=climb.best_candidate,
            best_qps=climb.best_value,
            batch_size=batch_size,
            sla_latency_s=sla_latency_s,
            qps_by_threshold=climb.as_dict(),
            gpu_work_fraction=gpu_fraction,
        )


@dataclass(frozen=True)
class FleetTuningResult:
    """Outcome of one fleet-wide knob tuning run."""

    best_batch_size: int
    best_policy: str
    best_threshold: Optional[int]
    best_qps: float
    sla_latency_s: float
    evaluations: Tuple[Tuple[Dict[str, Any], float], ...]

    @property
    def num_evaluations(self) -> int:
        """Number of distinct knob assignments evaluated."""
        return len(self.evaluations)


class FleetKnobTuner:
    """Coordinate-descent tuner for fleet-wide serving knobs.

    Tunes the per-server batch size together with the load-balancing policy
    (and the offload threshold, when any server has an accelerator) to
    maximise the fleet's latency-bounded throughput.  The objective of every
    knob assignment is one :func:`~repro.serving.cluster.find_cluster_max_qps`
    search, so tuned knobs account for balancing losses, not just per-server
    throughput.

    With ``jobs > 1`` the tuner keeps several upcoming knob assignments'
    capacity searches in flight on the invocation's shared worker pool (the
    hill climb walks its candidate ladder in a fixed order, so upcoming
    assignments are known before their values are needed); each search runs
    serially inside its worker.  The tuned knobs and every recorded
    evaluation are identical to the serial tuner's — speculation past a
    patience stop is the only wasted work.  ``warm_start_cache`` replays
    identical searches bit-identically across tuner runs sharing the
    directory; ``bracket_hints=True`` additionally tightens brackets from
    adjacent assignments' entries (faster, result-identical only within the
    cold search's bracket tolerance — opt-in).
    """

    def __init__(
        self,
        engines_per_server: Sequence[EnginePair],
        load_generator: LoadGenerator,
        num_cores: int = 0,
        num_queries: int = 400,
        capacity_iterations: int = 4,
        batch_candidates: Optional[Sequence[int]] = None,
        policies: Optional[Sequence[str]] = None,
        threshold_candidates: Optional[Sequence[int]] = None,
        sweeps: int = 2,
        patience: int = 2,
        jobs: int = 1,
        pool: Optional[WorkerPool] = None,
        warm_start_cache: Union[str, Path, None] = None,
        bracket_hints: bool = False,
    ) -> None:
        if not engines_per_server:
            raise ValueError("fleet tuning requires at least one server")
        check_positive("num_queries", num_queries)
        check_positive("capacity_iterations", capacity_iterations)
        self._engines = list(engines_per_server)
        self._load_generator = load_generator
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._batch_candidates = (
            list(batch_candidates)
            if batch_candidates is not None
            else power_of_two_candidates(64, 1024)
        )
        self._policies = list(policies) if policies is not None else available_balancers()
        self._has_accelerator = any(pair.has_accelerator for pair in self._engines)
        if threshold_candidates is not None and not self._has_accelerator:
            raise ValueError(
                "threshold_candidates given but no server has an accelerator"
            )
        if threshold_candidates is not None:
            self._threshold_candidates: Optional[List[int]] = list(threshold_candidates)
        elif self._has_accelerator:
            self._threshold_candidates = offload_threshold_candidates()
        else:
            self._threshold_candidates = None
        self._sweeps = sweeps
        self._patience = patience
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._jobs = jobs
        self._pool = pool
        self._warm_start_cache = (
            str(warm_start_cache) if warm_start_cache is not None else None
        )
        self._bracket_hints = bracket_hints

    def _fleet(self, batch_size: int, threshold: Optional[int]) -> List[ClusterServer]:
        return _tuner_fleet(self._engines, self._num_cores, batch_size, threshold)

    def _evaluator_payload(self, sla_latency_s: float) -> Dict[str, Any]:
        return {
            "engines": self._engines,
            "num_cores": self._num_cores,
            "num_queries": self._num_queries,
            "capacity_iterations": self._capacity_iterations,
            "sla_latency_s": sla_latency_s,
            "load_generator": self._load_generator,
            "warm_start_cache": self._warm_start_cache,
            "bracket_hints": self._bracket_hints,
        }

    def tune(self, sla_latency_s: float) -> FleetTuningResult:
        """Co-tune the fleet knobs and return the best assignment found."""
        check_positive("sla_latency_s", sla_latency_s)
        candidates: Dict[str, Sequence[Any]] = {
            "batch_size": self._batch_candidates,
            "policy": self._policies,
        }
        if self._threshold_candidates is not None:
            candidates["offload_threshold"] = self._threshold_candidates

        from repro.runtime.capacity import _parallel_budget

        context = TaskContext(_build_tuner_state, self._evaluator_payload(sla_latency_s))
        with pool_scope(self._jobs, self._pool) as worker_pool:
            budget = _parallel_budget(self._jobs, worker_pool)
            pending: Dict[tuple, Future] = {}

            def knob_key(knobs: Dict[str, Any]) -> tuple:
                return tuple(sorted(knobs.items()))

            def prefetch(assignments: Sequence[Dict[str, Any]]) -> None:
                # Upcoming ladder assignments become whole capacity searches
                # submitted into the shared pool (each runs serially in its
                # worker).  Only futures still *running* count against the
                # in-flight budget: a patience stop abandons its unconsumed
                # futures, and once those complete they must not keep
                # throttling later ladders' prefetches (their results stay
                # available in ``pending`` in case the descent revisits the
                # assignment).
                if budget <= 1 or worker_pool.parallelism <= 1:
                    return
                in_flight = sum(
                    1 for future in pending.values() if not future.done()
                )
                for knobs in assignments:
                    if in_flight >= budget:
                        break
                    key = knob_key(knobs)
                    if key not in pending:
                        pending[key] = worker_pool.submit(
                            _evaluate_tuner_point, dict(knobs), context=context
                        )
                        in_flight += 1

            def objective(knobs: Dict[str, Any]) -> float:
                future = pending.pop(knob_key(knobs), None)
                if future is not None:
                    return future.result()
                return _evaluate_tuner_point(context.build(), knobs)

            descent: DescentResult = coordinate_descent(
                candidates,
                objective,
                sweeps=self._sweeps,
                patience=self._patience,
                prefetch=prefetch,
            )
        return FleetTuningResult(
            best_batch_size=descent.best_knobs["batch_size"],
            best_policy=descent.best_knobs["policy"],
            best_threshold=descent.best_knobs.get("offload_threshold"),
            best_qps=descent.best_value,
            sla_latency_s=sla_latency_s,
            evaluations=tuple(descent.evaluations),
        )
