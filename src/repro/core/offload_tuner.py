"""DeepRecSched-GPU: accelerator query-size-threshold tuning.

The second half of the DeepRecSched algorithm (Section IV-C): with the CPU
batch size fixed by :class:`~repro.core.batch_tuner.BatchSizeTuner`, start
from a unit query-size threshold (every query offloaded to the accelerator)
and hill-climb over increasing thresholds — shrinking the share of work on
the accelerator — until the latency-bounded throughput stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.hill_climber import ClimbResult, hill_climb, power_of_two_candidates
from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import MAX_QUERY_SIZE
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig, SimulationResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class OffloadTuningResult:
    """Outcome of one query-size-threshold tuning run."""

    best_threshold: int
    best_qps: float
    batch_size: int
    sla_latency_s: float
    qps_by_threshold: Dict[int, float]
    gpu_work_fraction: float

    @property
    def num_evaluations(self) -> int:
        """Number of thresholds the hill climb evaluated."""
        return len(self.qps_by_threshold)


class OffloadThresholdTuner:
    """Hill-climbing query-size-threshold tuner (the GPU half of DeepRecSched)."""

    def __init__(
        self,
        engines: EnginePair,
        load_generator: LoadGenerator,
        num_cores: int = 0,
        num_queries: int = 800,
        capacity_iterations: int = 6,
        max_threshold: int = MAX_QUERY_SIZE,
        patience: int = 4,
    ) -> None:
        if not engines.has_accelerator:
            raise ValueError("offload tuning requires an accelerator engine")
        check_positive("num_queries", num_queries)
        check_positive("capacity_iterations", capacity_iterations)
        check_positive("max_threshold", max_threshold)
        self._engines = engines
        self._load_generator = load_generator
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._max_threshold = max_threshold
        self._patience = patience

    def candidates(self) -> List[int]:
        """Threshold candidates explored by the hill climb.

        Starts at the unit threshold (all queries on the accelerator, exactly
        as Section IV-C describes) and then climbs through power-of-two
        thresholds; very small thresholds below the bulk of the query-size
        distribution route essentially everything to the accelerator, so the
        climb skips straight from 1 to 16.
        """
        powers = [c for c in power_of_two_candidates(16, self._max_threshold) if c >= 16]
        return [1] + powers

    def _evaluate(
        self, threshold: int, batch_size: int, sla_latency_s: float
    ) -> tuple:
        config = ServingConfig(
            batch_size=batch_size,
            num_cores=self._num_cores,
            offload_threshold=threshold,
        )
        outcome = find_max_qps(
            self._engines,
            config,
            sla_latency_s,
            self._load_generator,
            num_queries=self._num_queries,
            iterations=self._capacity_iterations,
        )
        return outcome.max_qps, outcome.result

    def tune(self, batch_size: int, sla_latency_s: float) -> OffloadTuningResult:
        """Run the hill climb over thresholds at a fixed CPU batch size."""
        check_positive("batch_size", batch_size)
        check_positive("sla_latency_s", sla_latency_s)
        results: Dict[int, Optional[SimulationResult]] = {}

        def objective(threshold: int) -> float:
            qps, result = self._evaluate(threshold, batch_size, sla_latency_s)
            results[threshold] = result
            return qps

        climb: ClimbResult = hill_climb(
            self.candidates(), objective, patience=self._patience
        )
        best_result = results.get(climb.best_candidate)
        gpu_fraction = best_result.gpu_work_fraction if best_result is not None else 0.0
        return OffloadTuningResult(
            best_threshold=climb.best_candidate,
            best_qps=climb.best_value,
            batch_size=batch_size,
            sla_latency_s=sla_latency_s,
            qps_by_threshold=climb.as_dict(),
            gpu_work_fraction=gpu_fraction,
        )
