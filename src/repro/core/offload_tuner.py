"""DeepRecSched-GPU: accelerator query-size-threshold tuning.

The second half of the DeepRecSched algorithm (Section IV-C): with the CPU
batch size fixed by :class:`~repro.core.batch_tuner.BatchSizeTuner`, start
from a unit query-size threshold (every query offloaded to the accelerator)
and hill-climb over increasing thresholds — shrinking the share of work on
the accelerator — until the latency-bounded throughput stops improving.

:class:`FleetKnobTuner` lifts the same tuning loop to a whole fleet: it
co-tunes the fleet-wide batch size with the load-balancing policy (and,
for accelerator-attached fleets, the offload threshold) against the
cluster's QPS-at-SLA capacity via coordinate descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.hill_climber import (
    ClimbResult,
    DescentResult,
    coordinate_descent,
    hill_climb,
    power_of_two_candidates,
)
from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import MAX_QUERY_SIZE
from repro.serving.capacity import find_max_qps
from repro.serving.cluster import ClusterServer, available_balancers, find_cluster_max_qps
from repro.serving.simulator import ServingConfig, SimulationResult
from repro.utils.validation import check_positive


def offload_threshold_candidates(max_threshold: int = MAX_QUERY_SIZE) -> List[int]:
    """The DeepRecSched threshold ladder: unit threshold, then powers of two.

    Starts at 1 (every query offloaded, exactly as Section IV-C describes)
    and climbs through power-of-two thresholds from 16 up; thresholds in
    (1, 16) sit below the bulk of the query-size distribution and route
    essentially everything to the accelerator, so the ladder skips them.
    Shared by the single-server and fleet tuners so their search spaces
    cannot diverge.
    """
    check_positive("max_threshold", max_threshold)
    return [1] + power_of_two_candidates(16, max_threshold)


@dataclass(frozen=True)
class OffloadTuningResult:
    """Outcome of one query-size-threshold tuning run."""

    best_threshold: int
    best_qps: float
    batch_size: int
    sla_latency_s: float
    qps_by_threshold: Dict[int, float]
    gpu_work_fraction: float

    @property
    def num_evaluations(self) -> int:
        """Number of thresholds the hill climb evaluated."""
        return len(self.qps_by_threshold)


class OffloadThresholdTuner:
    """Hill-climbing query-size-threshold tuner (the GPU half of DeepRecSched)."""

    def __init__(
        self,
        engines: EnginePair,
        load_generator: LoadGenerator,
        num_cores: int = 0,
        num_queries: int = 800,
        capacity_iterations: int = 6,
        max_threshold: int = MAX_QUERY_SIZE,
        patience: int = 4,
    ) -> None:
        if not engines.has_accelerator:
            raise ValueError("offload tuning requires an accelerator engine")
        check_positive("num_queries", num_queries)
        check_positive("capacity_iterations", capacity_iterations)
        check_positive("max_threshold", max_threshold)
        self._engines = engines
        self._load_generator = load_generator
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._max_threshold = max_threshold
        self._patience = patience

    def candidates(self) -> List[int]:
        """Threshold candidates explored by the hill climb.

        See :func:`offload_threshold_candidates` for the ladder's rationale.
        """
        return offload_threshold_candidates(self._max_threshold)

    def _evaluate(
        self, threshold: int, batch_size: int, sla_latency_s: float
    ) -> tuple:
        config = ServingConfig(
            batch_size=batch_size,
            num_cores=self._num_cores,
            offload_threshold=threshold,
        )
        outcome = find_max_qps(
            self._engines,
            config,
            sla_latency_s,
            self._load_generator,
            num_queries=self._num_queries,
            iterations=self._capacity_iterations,
        )
        return outcome.max_qps, outcome.result

    def tune(self, batch_size: int, sla_latency_s: float) -> OffloadTuningResult:
        """Run the hill climb over thresholds at a fixed CPU batch size."""
        check_positive("batch_size", batch_size)
        check_positive("sla_latency_s", sla_latency_s)
        results: Dict[int, Optional[SimulationResult]] = {}

        def objective(threshold: int) -> float:
            qps, result = self._evaluate(threshold, batch_size, sla_latency_s)
            results[threshold] = result
            return qps

        climb: ClimbResult = hill_climb(
            self.candidates(), objective, patience=self._patience
        )
        best_result = results.get(climb.best_candidate)
        gpu_fraction = best_result.gpu_work_fraction if best_result is not None else 0.0
        return OffloadTuningResult(
            best_threshold=climb.best_candidate,
            best_qps=climb.best_value,
            batch_size=batch_size,
            sla_latency_s=sla_latency_s,
            qps_by_threshold=climb.as_dict(),
            gpu_work_fraction=gpu_fraction,
        )


@dataclass(frozen=True)
class FleetTuningResult:
    """Outcome of one fleet-wide knob tuning run."""

    best_batch_size: int
    best_policy: str
    best_threshold: Optional[int]
    best_qps: float
    sla_latency_s: float
    evaluations: Tuple[Tuple[Dict[str, Any], float], ...]

    @property
    def num_evaluations(self) -> int:
        """Number of distinct knob assignments evaluated."""
        return len(self.evaluations)


class FleetKnobTuner:
    """Coordinate-descent tuner for fleet-wide serving knobs.

    Tunes the per-server batch size together with the load-balancing policy
    (and the offload threshold, when any server has an accelerator) to
    maximise the fleet's latency-bounded throughput.  The objective of every
    knob assignment is one :func:`~repro.serving.cluster.find_cluster_max_qps`
    search, so tuned knobs account for balancing losses, not just per-server
    throughput.
    """

    def __init__(
        self,
        engines_per_server: Sequence[EnginePair],
        load_generator: LoadGenerator,
        num_cores: int = 0,
        num_queries: int = 400,
        capacity_iterations: int = 4,
        batch_candidates: Optional[Sequence[int]] = None,
        policies: Optional[Sequence[str]] = None,
        threshold_candidates: Optional[Sequence[int]] = None,
        sweeps: int = 2,
        patience: int = 2,
    ) -> None:
        if not engines_per_server:
            raise ValueError("fleet tuning requires at least one server")
        check_positive("num_queries", num_queries)
        check_positive("capacity_iterations", capacity_iterations)
        self._engines = list(engines_per_server)
        self._load_generator = load_generator
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._batch_candidates = (
            list(batch_candidates)
            if batch_candidates is not None
            else power_of_two_candidates(64, 1024)
        )
        self._policies = list(policies) if policies is not None else available_balancers()
        self._has_accelerator = any(pair.has_accelerator for pair in self._engines)
        if threshold_candidates is not None and not self._has_accelerator:
            raise ValueError(
                "threshold_candidates given but no server has an accelerator"
            )
        if threshold_candidates is not None:
            self._threshold_candidates: Optional[List[int]] = list(threshold_candidates)
        elif self._has_accelerator:
            self._threshold_candidates = offload_threshold_candidates()
        else:
            self._threshold_candidates = None
        self._sweeps = sweeps
        self._patience = patience

    def _fleet(self, batch_size: int, threshold: Optional[int]) -> List[ClusterServer]:
        servers = []
        for index, engines in enumerate(self._engines):
            config = ServingConfig(
                batch_size=batch_size,
                num_cores=self._num_cores,
                offload_threshold=threshold if engines.has_accelerator else None,
            )
            servers.append(
                ClusterServer(engines=engines, config=config, name=f"server-{index}")
            )
        return servers

    def tune(self, sla_latency_s: float) -> FleetTuningResult:
        """Co-tune the fleet knobs and return the best assignment found."""
        check_positive("sla_latency_s", sla_latency_s)
        candidates: Dict[str, Sequence[Any]] = {
            "batch_size": self._batch_candidates,
            "policy": self._policies,
        }
        if self._threshold_candidates is not None:
            candidates["offload_threshold"] = self._threshold_candidates

        def objective(knobs: Dict[str, Any]) -> float:
            servers = self._fleet(knobs["batch_size"], knobs.get("offload_threshold"))
            outcome = find_cluster_max_qps(
                servers,
                knobs["policy"],
                sla_latency_s,
                self._load_generator,
                num_queries=self._num_queries,
                iterations=self._capacity_iterations,
            )
            return outcome.max_qps

        descent: DescentResult = coordinate_descent(
            candidates, objective, sweeps=self._sweeps, patience=self._patience
        )
        return FleetTuningResult(
            best_batch_size=descent.best_knobs["batch_size"],
            best_policy=descent.best_knobs["policy"],
            best_threshold=descent.best_knobs.get("offload_threshold"),
            best_qps=descent.best_value,
            sla_latency_s=sla_latency_s,
            evaluations=tuple(descent.evaluations),
        )
