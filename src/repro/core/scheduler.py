"""DeepRecSched: the end-to-end scheduler facade.

Combines the static production baseline, the batch-size tuner
(DeepRecSched-CPU), and the accelerator query-size-threshold tuner
(DeepRecSched-GPU) into one object that, for a given recommendation model,
hardware platform, SLA tier, and query workload, produces the operating
points the paper's headline evaluation (Fig. 11) compares:

* ``baseline()`` — fixed batch size (max query / cores), CPU only;
* ``optimize_cpu()`` — tuned per-request batch size, CPU only;
* ``optimize_gpu()`` — tuned batch size plus tuned offload threshold.

Each operating point is reported with its latency-bounded throughput (QPS
under the p95 SLA) and its power efficiency (QPS/Watt) from the system power
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.batch_tuner import BatchSizeTuner, BatchTuningResult
from repro.core.offload_tuner import OffloadThresholdTuner, OffloadTuningResult
from repro.core.static_scheduler import StaticSchedulerPolicy
from repro.execution.engine import EnginePair, build_engine_pair
from repro.hardware.power import SystemPowerModel
from repro.queries.generator import LoadGenerator
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig, SimulationResult
from repro.serving.sla import SLATier, sla_target
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class OperatingPoint:
    """One scheduler configuration with its measured throughput and power."""

    scheduler: str
    model_name: str
    sla_tier: SLATier
    sla_latency_s: float
    batch_size: int
    offload_threshold: Optional[int]
    qps: float
    qps_per_watt: float
    cpu_utilization: float
    gpu_utilization: float
    gpu_work_fraction: float

    @property
    def uses_accelerator(self) -> bool:
        """True when this operating point offloads queries to the accelerator."""
        return self.offload_threshold is not None


class DeepRecSched:
    """Scheduler that tunes request- vs batch-level parallelism and GPU offload."""

    def __init__(
        self,
        model: str,
        cpu_platform: str = "skylake",
        gpu_platform: Optional[str] = "gtx1080ti",
        load_generator: Optional[LoadGenerator] = None,
        num_cores: int = 0,
        num_queries: int = 800,
        capacity_iterations: int = 6,
        seed: int = 0,
    ) -> None:
        check_positive("num_queries", num_queries)
        self._model_name = model
        self._engines: EnginePair = build_engine_pair(model, cpu_platform, gpu_platform)
        self._load_generator = (
            load_generator if load_generator is not None else LoadGenerator(seed=seed)
        )
        self._num_cores = num_cores
        self._num_queries = num_queries
        self._capacity_iterations = capacity_iterations
        self._power_model = SystemPowerModel(
            self._engines.cpu.platform, self._engines.gpu.platform if self._engines.gpu else None
        )
        self._static_policy = StaticSchedulerPolicy(
            max_query_size=self._load_generator.sizes.max_size
        )

    @property
    def engines(self) -> EnginePair:
        """The CPU (and optional GPU) engines the scheduler drives."""
        return self._engines

    @property
    def model_name(self) -> str:
        """Zoo key of the model being scheduled."""
        return self._model_name

    # ------------------------------------------------------------------ #

    def _sla_seconds(self, tier: SLATier) -> float:
        return sla_target(self._model_name, tier).latency_s

    def _measure(
        self, config: ServingConfig, sla_latency_s: float
    ) -> tuple:
        outcome = find_max_qps(
            self._engines,
            config,
            sla_latency_s,
            self._load_generator,
            num_queries=self._num_queries,
            iterations=self._capacity_iterations,
        )
        return outcome.max_qps, outcome.result

    def _operating_point(
        self,
        scheduler: str,
        tier: SLATier,
        sla_latency_s: float,
        config: ServingConfig,
        qps: float,
        result: Optional[SimulationResult],
        include_gpu_power: bool,
    ) -> OperatingPoint:
        cpu_util = result.cpu_utilization if result is not None else 0.0
        gpu_util = result.gpu_utilization if result is not None else 0.0
        gpu_fraction = result.gpu_work_fraction if result is not None else 0.0
        power = self._power_model.power(
            cpu_utilization=cpu_util,
            gpu_utilization=gpu_util if include_gpu_power else 0.0,
            qps=qps,
        )
        # A CPU-only operating point does not pay for an idle accelerator.
        watts = power.total_watts if include_gpu_power else power.cpu_watts
        return OperatingPoint(
            scheduler=scheduler,
            model_name=self._model_name,
            sla_tier=tier,
            sla_latency_s=sla_latency_s,
            batch_size=config.batch_size,
            offload_threshold=config.offload_threshold,
            qps=qps,
            qps_per_watt=(qps / watts) if watts > 0 else 0.0,
            cpu_utilization=cpu_util,
            gpu_utilization=gpu_util,
            gpu_work_fraction=gpu_fraction,
        )

    # ------------------------------------------------------------------ #

    def baseline(self, tier: SLATier = SLATier.MEDIUM) -> OperatingPoint:
        """Static production baseline: fixed batch size, CPU only."""
        sla_latency_s = self._sla_seconds(tier)
        config = self._static_policy.serving_config(
            self._engines.cpu.platform, self._num_cores
        )
        qps, result = self._measure(config, sla_latency_s)
        return self._operating_point(
            "static", tier, sla_latency_s, config, qps, result, include_gpu_power=False
        )

    def optimize_cpu(self, tier: SLATier = SLATier.MEDIUM) -> OperatingPoint:
        """DeepRecSched-CPU: tuned per-request batch size, CPU only."""
        sla_latency_s = self._sla_seconds(tier)
        tuner = BatchSizeTuner(
            self._engines,
            self._load_generator,
            num_cores=self._num_cores,
            num_queries=self._num_queries,
            capacity_iterations=self._capacity_iterations,
        )
        tuning: BatchTuningResult = tuner.tune(sla_latency_s)
        config = ServingConfig(
            batch_size=tuning.best_batch_size, num_cores=self._num_cores
        )
        qps, result = self._measure(config, sla_latency_s)
        return self._operating_point(
            "deeprecsched-cpu",
            tier,
            sla_latency_s,
            config,
            max(qps, tuning.best_qps),
            result,
            include_gpu_power=False,
        )

    def optimize_gpu(
        self, tier: SLATier = SLATier.MEDIUM, batch_size: Optional[int] = None
    ) -> OperatingPoint:
        """DeepRecSched-GPU: tuned batch size plus tuned offload threshold.

        ``batch_size`` can pin the CPU batch size (e.g. reuse the CPU tuning
        result); by default the CPU tuner runs first, exactly as described in
        Section IV-C.
        """
        if not self._engines.has_accelerator:
            raise ValueError("this scheduler was built without a GPU platform")
        sla_latency_s = self._sla_seconds(tier)
        if batch_size is None:
            cpu_point = self.optimize_cpu(tier)
            batch_size = cpu_point.batch_size
        tuner = OffloadThresholdTuner(
            self._engines,
            self._load_generator,
            num_cores=self._num_cores,
            num_queries=self._num_queries,
            capacity_iterations=self._capacity_iterations,
        )
        tuning: OffloadTuningResult = tuner.tune(batch_size, sla_latency_s)
        config = ServingConfig(
            batch_size=batch_size,
            num_cores=self._num_cores,
            offload_threshold=tuning.best_threshold,
        )
        qps, result = self._measure(config, sla_latency_s)
        return self._operating_point(
            "deeprecsched-gpu",
            tier,
            sla_latency_s,
            config,
            max(qps, tuning.best_qps),
            result,
            include_gpu_power=True,
        )
