"""Generic hill-climbing optimiser used by DeepRecSched.

Section IV-C observes that the QPS-vs-batch-size and QPS-vs-offload-threshold
surfaces are smooth enough that a simple hill climber finds the optimum: start
from the smallest candidate, keep moving to the next larger candidate while
the objective improves, and stop after the objective degrades ``patience``
times in a row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.utils.validation import check_positive

CandidateT = TypeVar("CandidateT")


@dataclass
class ClimbResult(Generic[CandidateT]):
    """Outcome of one hill climb.

    Attributes
    ----------
    best_candidate:
        Candidate with the highest objective value among those evaluated.
    best_value:
        Objective value at ``best_candidate``.
    evaluations:
        Every candidate evaluated, in evaluation order, with its value.
    """

    best_candidate: CandidateT
    best_value: float
    evaluations: List[tuple]

    @property
    def num_evaluations(self) -> int:
        """Number of objective evaluations the climb performed."""
        return len(self.evaluations)

    def as_dict(self) -> Dict[CandidateT, float]:
        """Evaluated candidates mapped to their objective values."""
        return dict(self.evaluations)


def hill_climb(
    candidates: Sequence[CandidateT],
    objective: Callable[[CandidateT], float],
    patience: int = 2,
    relative_tolerance: float = 0.0,
    prefetch: Optional[Callable[[Sequence[CandidateT]], None]] = None,
) -> ClimbResult:
    """Walk ``candidates`` in order while ``objective`` keeps improving.

    Parameters
    ----------
    candidates:
        Ordered candidate values (e.g. increasing batch sizes).
    objective:
        Function to maximise.
    patience:
        Number of consecutive non-improving candidates tolerated before
        stopping.  ``patience=1`` stops at the first degradation (the paper's
        description); the default of 2 is slightly more robust to simulator
        noise.
    relative_tolerance:
        A candidate counts as improving if it exceeds the best value by more
        than this relative margin.
    prefetch:
        Called with the not-yet-evaluated tail of the ladder before each
        objective call.  The climb walks candidates in a fixed order — only
        *where it stops* depends on the values — so a caller can start
        evaluating upcoming candidates concurrently (e.g. as capacity
        searches on a worker pool) without changing a single decision;
        speculation past a patience stop is the only waste.
    """
    if not candidates:
        raise ValueError("candidates must not be empty")
    check_positive("patience", patience)
    if relative_tolerance < 0:
        raise ValueError(f"relative_tolerance must be >= 0, got {relative_tolerance}")

    evaluations: List[tuple] = []
    best_candidate = candidates[0]
    if prefetch is not None:
        prefetch(candidates[1:])
    best_value = objective(best_candidate)
    evaluations.append((best_candidate, best_value))
    misses = 0

    for index, candidate in enumerate(candidates[1:], start=2):
        if prefetch is not None:
            prefetch(candidates[index:])
        value = objective(candidate)
        evaluations.append((candidate, value))
        if value > best_value * (1.0 + relative_tolerance):
            best_candidate, best_value = candidate, value
            misses = 0
        elif best_value > 0:
            # Only count non-improving steps against the patience budget once a
            # feasible (positive-objective) operating point has been found;
            # otherwise an infeasible low end of the candidate range (e.g.
            # batch sizes too small to meet a tight SLA at all) would stop the
            # climb before it ever reaches the feasible region.
            misses += 1
            if misses >= patience:
                break
    return ClimbResult(
        best_candidate=best_candidate, best_value=best_value, evaluations=evaluations
    )


@dataclass
class DescentResult:
    """Outcome of one coordinate descent over several named knobs.

    Attributes
    ----------
    best_knobs:
        Knob assignment with the highest objective value found.
    best_value:
        Objective value at ``best_knobs``.
    evaluations:
        Every distinct knob assignment evaluated, in evaluation order.
    """

    best_knobs: Dict[str, Any]
    best_value: float
    evaluations: List[Tuple[Dict[str, Any], float]]

    @property
    def num_evaluations(self) -> int:
        """Number of distinct objective evaluations performed."""
        return len(self.evaluations)


def coordinate_descent(
    candidates_by_knob: Mapping[str, Sequence[Any]],
    objective: Callable[[Dict[str, Any]], float],
    sweeps: int = 2,
    patience: int = 2,
    relative_tolerance: float = 0.0,
    prefetch: Optional[Callable[[Sequence[Dict[str, Any]]], None]] = None,
) -> DescentResult:
    """Maximise ``objective`` over several knobs, one knob at a time.

    Each sweep runs :func:`hill_climb` along every knob's candidate list in
    turn, holding the other knobs at their current best values; sweeps stop
    early once a full pass yields no improvement.  This is the multi-knob
    generalisation of the DeepRecSched tuning loop and is what the fleet
    tuner uses to co-tune the per-server batch size with the balancing
    policy.  Assignments are memoised, so re-visiting a point costs nothing.

    ``prefetch`` receives the not-yet-memoised knob assignments the current
    ladder will walk next (see :func:`hill_climb`), letting the fleet tuner
    keep several assignments' capacity searches in flight on the shared
    worker pool while the descent consumes their values in ladder order.

    Knob candidate values must be hashable (ints, strings, enums, ...).
    """
    if not candidates_by_knob:
        raise ValueError("candidates_by_knob must not be empty")
    for knob, candidates in candidates_by_knob.items():
        if not candidates:
            raise ValueError(f"knob {knob!r} has no candidates")
    check_positive("sweeps", sweeps)

    cache: Dict[Tuple, float] = {}
    evaluations: List[Tuple[Dict[str, Any], float]] = []

    def evaluate(knobs: Dict[str, Any]) -> float:
        key = tuple(sorted(knobs.items()))
        if key not in cache:
            value = objective(dict(knobs))
            cache[key] = value
            evaluations.append((dict(knobs), value))
        return cache[key]

    best_knobs = {knob: candidates[0] for knob, candidates in candidates_by_knob.items()}
    best_value = evaluate(best_knobs)

    for _ in range(sweeps):
        improved = False
        for knob, candidates in candidates_by_knob.items():

            def ladder_prefetch(
                upcoming: Sequence[Any], knob: str = knob
            ) -> None:
                if prefetch is None:
                    return
                fresh = [
                    {**best_knobs, knob: candidate}
                    for candidate in upcoming
                    if tuple(sorted({**best_knobs, knob: candidate}.items()))
                    not in cache
                ]
                if fresh:
                    prefetch(fresh)

            climb = hill_climb(
                candidates,
                lambda candidate: evaluate({**best_knobs, knob: candidate}),
                patience=patience,
                relative_tolerance=relative_tolerance,
                prefetch=ladder_prefetch if prefetch is not None else None,
            )
            if climb.best_value > best_value * (1.0 + relative_tolerance):
                best_value = climb.best_value
                best_knobs = {**best_knobs, knob: climb.best_candidate}
                improved = True
        if not improved:
            break
    return DescentResult(
        best_knobs=best_knobs, best_value=best_value, evaluations=evaluations
    )


def power_of_two_candidates(minimum: int, maximum: int) -> List[int]:
    """Powers of two in ``[minimum, maximum]``, always including both ends."""
    check_positive("minimum", minimum)
    check_positive("maximum", maximum)
    if maximum < minimum:
        raise ValueError(f"maximum {maximum} < minimum {minimum}")
    values = []
    value = 1
    while value <= maximum:
        if value >= minimum:
            values.append(value)
        value *= 2
    if not values or values[0] != minimum:
        values.insert(0, minimum)
    if values[-1] != maximum:
        values.append(maximum)
    return values
