"""DeepRecSched: hill-climbing scheduler for latency-bounded recommendation inference."""

from repro.core.batch_tuner import BatchSizeTuner, BatchTuningResult
from repro.core.hill_climber import (
    ClimbResult,
    DescentResult,
    coordinate_descent,
    hill_climb,
    power_of_two_candidates,
)
from repro.core.offload_tuner import (
    FleetKnobTuner,
    FleetTuningResult,
    OffloadThresholdTuner,
    OffloadTuningResult,
    offload_threshold_candidates,
)
from repro.core.scheduler import DeepRecSched, OperatingPoint
from repro.core.static_scheduler import StaticSchedulerPolicy, static_batch_size

__all__ = [
    "BatchSizeTuner",
    "BatchTuningResult",
    "ClimbResult",
    "DescentResult",
    "coordinate_descent",
    "hill_climb",
    "power_of_two_candidates",
    "FleetKnobTuner",
    "FleetTuningResult",
    "OffloadThresholdTuner",
    "OffloadTuningResult",
    "offload_threshold_candidates",
    "DeepRecSched",
    "OperatingPoint",
    "StaticSchedulerPolicy",
    "static_batch_size",
]
