"""Unit constants and conversion helpers.

All internal quantities in the library use SI base units: seconds for time,
bytes for storage, FLOPs for compute work.  These helpers exist so that
experiment drivers and reports can speak in the units the paper uses
(milliseconds, GB, GFLOP/s) without sprinkling magic constants.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

GIGA: float = 1e9
MEGA: float = 1e6
KILO: float = 1e3


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def s_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def us_to_s(microseconds: float) -> float:
    """Convert microseconds to seconds."""
    return microseconds * 1e-6


def bytes_to_mb(num_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return num_bytes / MB


def bytes_to_gb(num_bytes: float) -> float:
    """Convert bytes to gibibytes."""
    return num_bytes / GB


def flops_to_gflops(flops: float) -> float:
    """Convert FLOPs to GFLOPs."""
    return flops / GIGA
