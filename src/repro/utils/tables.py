"""Plain-text table formatting for experiment reports.

The experiment drivers print the same rows/series the paper's tables and
figures report; ``format_table`` renders them as aligned monospace tables so
bench output is readable in a terminal or a log file.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _render_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    Raises ``ValueError`` if any row length differs from the header length.
    """
    header_cells = [str(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [_render_cell(value, float_fmt) for value in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        rendered_rows.append(cells)

    widths = [len(cell) for cell in header_cells]
    for cells in rendered_rows:
        for idx, cell in enumerate(cells):
            widths[idx] = max(widths[idx], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(header_cells))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(cells) for cells in rendered_rows)
    return "\n".join(lines)
