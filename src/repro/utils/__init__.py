"""Shared utilities: statistics, RNG management, unit helpers, text tables."""

from repro.utils.rng import RngFactory, derive_rng
from repro.utils.sketch import DEFAULT_K, RANK_ERROR_BOUND, QuantileSketch
from repro.utils.stats import (
    PercentileTracker,
    StreamingStats,
    cdf_points,
    geometric_mean,
    max_relative_cdf_gap,
    percentile,
)
from repro.utils.tables import format_table
from repro.utils.units import (
    GB,
    KB,
    MB,
    bytes_to_gb,
    bytes_to_mb,
    ms_to_s,
    s_to_ms,
    s_to_us,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngFactory",
    "derive_rng",
    "DEFAULT_K",
    "RANK_ERROR_BOUND",
    "QuantileSketch",
    "PercentileTracker",
    "StreamingStats",
    "cdf_points",
    "geometric_mean",
    "max_relative_cdf_gap",
    "percentile",
    "format_table",
    "KB",
    "MB",
    "GB",
    "bytes_to_gb",
    "bytes_to_mb",
    "ms_to_s",
    "s_to_ms",
    "s_to_us",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
