"""Mergeable fixed-space streaming quantile sketch (KLL-style compactors).

``PercentileTracker`` buffers every latency sample, which is exactly right
for figure-sized runs (bit-identical percentiles, cheap re-sorts) and
exactly wrong for 10⁶–10⁷-query traces, where the sample buffer becomes the
peak-RSS driver.  :class:`QuantileSketch` is the opt-in alternative behind
``PercentileTracker(mode="sketch")``: a compactor hierarchy in the style of
the KLL sketch (Karnin, Lang, Liberty, FOCS 2016) with

* **bounded space**: level capacities decay geometrically (ratio 2/3) from
  ``k`` at the top, so retained items never exceed ``3k + 8·64`` floats
  regardless of stream length — with the default ``k`` that is a few
  thousand floats where the exact tracker would hold millions;
* **determinism**: compaction keeps alternating odd/even survivors via a
  per-level parity bit instead of coin flips, so the same input sequence
  always yields the same sketch (the repository's replay contract);
* **mergeability**: :meth:`merge` concatenates levels and re-compacts,
  so per-window sketches combine in fixed space instead of concatenating
  sample lists;
* **an exactness floor**: until the first compaction (streams of at most
  ``k`` samples) every item is retained at weight 1 and
  :meth:`percentile` reproduces ``numpy.percentile``'s linear
  interpolation bit for bit.  Count, sum (hence :meth:`mean`), minimum,
  and maximum are tracked exactly at any stream length.

Error bound
-----------
Each compaction of ``m`` items at weight ``w`` can displace a rank by at
most ``w``; with alternating parity the displacements at one level cancel
pairwise, and the geometric capacity schedule keeps the surviving error
dominated by the top levels.  For the default ``k = 400`` the test suite
(``tests/test_utils_sketch.py``) enforces a normalised rank error below
``RANK_ERROR_BOUND`` (1 % of the stream length) against the exact path on
adversarial streams — bimodal, heavy-tailed, constant, and sorted inputs —
and that bound is the contract consumers may rely on: a reported p95 is an
exact percentile of some rank in ``[94, 96]``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple, Union

import numpy as np

__all__ = ["DEFAULT_K", "RANK_ERROR_BOUND", "QuantileSketch"]

#: Default top-level capacity.  ~1.4k retained floats steady-state; the
#: property-tested rank-error bound below is calibrated for this value.
DEFAULT_K = 400

#: Normalised rank-error contract at ``DEFAULT_K``, enforced by the
#: hypothesis property tests: ``percentile(p)`` lies between the exact
#: ``p ± 100 * RANK_ERROR_BOUND`` percentiles of the stream.
RANK_ERROR_BOUND = 0.01

#: Smallest per-level buffer; below this, compacting buys nothing.
_MIN_LEVEL_CAPACITY = 8

#: Geometric decay of level capacities, top level down (KLL's c = 2/3).
_CAPACITY_DECAY = 2.0 / 3.0

#: Levels can never exceed this in practice: level ``L`` holds items of
#: weight ``2**L``, so 64 levels would need more samples than fit in an
#: int64 count.  Used only for the documented worst-case footprint bound.
_MAX_LEVELS = 64


class QuantileSketch:
    """Fixed-space quantile summary of a float stream.

    Parameters
    ----------
    k:
        Top-level compactor capacity.  Space grows linearly and error
        shrinks roughly linearly in ``k``; the default is calibrated so the
        property-tested rank error stays under :data:`RANK_ERROR_BOUND`.
    """

    __slots__ = ("_k", "_levels", "_parity", "_cap0", "_count", "_sum", "_min", "_max")

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k < 2 * _MIN_LEVEL_CAPACITY:
            raise ValueError(f"k must be >= {2 * _MIN_LEVEL_CAPACITY}, got {k}")
        self._k = k
        self._levels: List[List[float]] = [[]]
        self._parity: List[bool] = [False]
        self._cap0 = k
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._levels[0].append(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._levels[0]) >= self._cap0:
            self._compress()

    def extend(self, values: "Union[Iterable[float], np.ndarray]") -> None:
        """Record many samples.

        Produces the same retained levels as repeated :meth:`add` (block
        boundaries align with the level-0 capacity), so percentiles are
        identical; only the running sum may differ in the last ulp because
        blocks are summed pairwise.
        """
        if isinstance(values, np.ndarray):
            arr = values.astype(np.float64, copy=False)
        else:
            arr = np.asarray(list(values), dtype=np.float64)
        size = int(arr.size)
        if size == 0:
            return
        self._count += size
        self._sum += float(arr.sum())
        low = float(arr.min())
        high = float(arr.max())
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        pos = 0
        while pos < size:
            level0 = self._levels[0]
            room = max(1, self._cap0 - len(level0))
            block = arr[pos : pos + room]
            level0.extend(block.tolist())
            pos += int(block.size)
            if len(self._levels[0]) >= self._cap0:
                self._compress()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other``'s summary into this sketch, in fixed space.

        Level lists concatenate and re-compact, so merging preserves the
        total weight exactly (the combined count) and keeps the footprint
        bound.  Sketches must share ``k`` — mixing capacities would give
        the merged summary an ill-defined error bound.
        """
        if other is self:
            raise ValueError("cannot merge a sketch into itself")
        if other._k != self._k:
            raise ValueError(f"cannot merge sketches with k={other._k} into k={self._k}")
        if other._count == 0:
            return
        self._count += other._count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        while len(self._levels) < len(other._levels):
            self._levels.append([])
            self._parity.append(False)
        for level, items in enumerate(other._levels):
            self._levels[level].extend(items)
        self._cap0 = self._capacity(0)
        self._compress()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        """Exact number of samples recorded."""
        return self._count

    @property
    def minimum(self) -> float:
        """Exact smallest sample; raises on an empty sketch."""
        if not self._count:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def maximum(self) -> float:
        """Exact largest sample; raises on an empty sketch."""
        if not self._count:
            raise ValueError("no samples recorded")
        return self._max

    def mean(self) -> float:
        """Exact mean (count and sum are tracked outside the compactors)."""
        if not self._count:
            raise ValueError("no samples recorded")
        return self._sum / self._count

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0–100) of the stream.

        Uses ``numpy.percentile``-style linear interpolation over the
        weighted retained items: exact until the first compaction, within
        the documented rank-error bound after it.  The 0th and 100th
        percentiles are always exact (tracked min/max).
        """
        if self._count == 0:
            raise ValueError("cannot take a percentile of an empty sketch")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"pct must be in [0, 100], got {pct}")
        if pct == 0.0:  # reprolint: disable=RL007 -- exact sentinel: caller asked for the tracked-exact minimum
            return self._min
        if pct == 100.0:  # reprolint: disable=RL007 -- exact sentinel: caller asked for the tracked-exact maximum
            return self._max
        values, weights = self._flattened()
        rank = (pct / 100.0) * (self._count - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        cum = np.cumsum(weights)
        x_lo = float(values[int(np.searchsorted(cum, lo, side="right"))])
        x_hi = float(values[int(np.searchsorted(cum, hi, side="right"))])
        # numpy's lerp: switch forms at frac >= 0.5 so the pre-compaction
        # exactness floor reproduces np.percentile bit for bit.
        frac = rank - lo
        diff = x_hi - x_lo
        if frac >= 0.5:
            return x_hi - diff * (1.0 - frac)
        return x_lo + diff * frac

    def footprint(self) -> int:
        """Retained floats across all levels (the space actually held).

        Bounded by ``3k + 8 * 64`` for any stream length: capacities decay
        geometrically (sum < 3k) and the minimum-capacity floor can apply
        to at most :data:`_MAX_LEVELS` levels.
        """
        return sum(len(items) for items in self._levels)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(k={self._k}, count={self._count}, "
            f"levels={len(self._levels)}, footprint={self.footprint()})"
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _capacity(self, level: int) -> int:
        depth = len(self._levels) - 1 - level
        return max(_MIN_LEVEL_CAPACITY, math.ceil(self._k * _CAPACITY_DECAY**depth))

    def _compress(self) -> None:
        """Compact every over-capacity level until all are within bounds.

        Restarts from level 0 after each compaction because growing a new
        top level shrinks every lower level's capacity.  Terminates: each
        compaction strictly reduces the total retained item count.
        """
        level = 0
        while level < len(self._levels):
            if len(self._levels[level]) >= self._capacity(level):
                self._compact(level)
                level = 0
            else:
                level += 1

    def _compact(self, level: int) -> None:
        """Halve one level: keep alternating survivors at double weight."""
        items = self._levels[level]
        items.sort()
        if level + 1 == len(self._levels):
            self._levels.append([])
            self._parity.append(False)
            self._cap0 = self._capacity(0)
        leftover: List[float] = []
        if len(items) % 2:
            # An odd item cannot split into weight-2w survivors; the max
            # stays behind at its own weight so total weight is preserved.
            leftover.append(items.pop())
        offset = 1 if self._parity[level] else 0
        self._parity[level] = not self._parity[level]
        self._levels[level + 1].extend(items[offset::2])
        self._levels[level] = leftover

    def _flattened(self) -> "Tuple[np.ndarray, np.ndarray]":
        """Retained ``(values, weights)`` sorted by value (stable)."""
        vals: List[np.ndarray] = []
        wts: List[np.ndarray] = []
        for level, items in enumerate(self._levels):
            if not items:
                continue
            vals.append(np.asarray(items, dtype=np.float64))
            wts.append(np.full(len(items), 1 << level, dtype=np.int64))
        values = np.concatenate(vals)
        weights = np.concatenate(wts)
        order = np.argsort(values, kind="stable")
        return values[order], weights[order]
