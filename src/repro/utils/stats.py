"""Statistics helpers: percentiles, streaming moments, CDF comparison.

The serving simulator measures p95/p99 tail latency over tens of thousands of
queries; ``PercentileTracker`` keeps the raw samples (latencies are small
floats, so this is cheap) and computes arbitrary percentiles on demand.  For
million-query traces, where exact buffering becomes the peak-RSS driver, the
opt-in ``PercentileTracker(mode="sketch")`` delegates to the fixed-space
:class:`repro.utils.sketch.QuantileSketch` instead — same recording API,
approximate percentiles within the sketch's documented rank-error bound,
no retained samples.  ``StreamingStats`` keeps constant-space running
moments for counters that do not need percentiles (e.g. per-core busy time).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.sketch import QuantileSketch


def percentile(samples: "Union[Sequence[float], np.ndarray]", pct: float) -> float:
    """Return the ``pct``-th percentile (0-100) of ``samples``.

    Uses linear interpolation, matching ``numpy.percentile`` defaults.  Raises
    ``ValueError`` on an empty sample set because a tail-latency statistic over
    zero queries is meaningless (silently returning 0 would hide load-generator
    bugs).
    """
    if len(samples) == 0:
        raise ValueError("cannot take a percentile of an empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    return float(np.percentile(np.asarray(samples, dtype=float), pct))


def geometric_mean(values: Sequence[float]) -> float:
    """Return the geometric mean of strictly positive ``values``.

    The paper reports speedups aggregated across the eight models as a
    geometric mean (Fig. 11 "GeoMean" column).
    """
    if len(values) == 0:
        raise ValueError("cannot take a geometric mean of an empty sequence")
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def cdf_points(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)`` for plotting a CDF."""
    if len(samples) == 0:
        raise ValueError("cannot build a CDF from an empty sample set")
    values = np.sort(np.asarray(samples, dtype=float))
    probs = np.arange(1, len(values) + 1) / len(values)
    return values, probs


def max_relative_cdf_gap(
    reference: Sequence[float],
    other: Sequence[float],
    percentiles: Iterable[float] = (50, 75, 90, 95, 99),
) -> float:
    """Return the maximum relative gap between two latency distributions.

    Used for the Fig. 7 claim that a handful of nodes track the datacenter-wide
    latency distribution to within ~10 %: the gap is measured at a set of
    percentiles and normalised by the reference value.
    """
    gaps: List[float] = []
    for pct in percentiles:
        ref = percentile(reference, pct)
        oth = percentile(other, pct)
        if ref == 0:
            continue
        gaps.append(abs(oth - ref) / abs(ref))
    if not gaps:
        return 0.0
    return max(gaps)


class PercentileTracker:
    """Collects latency samples and reports percentiles.

    In the default ``mode="exact"``, samples accumulate into a growable
    ``numpy`` buffer (no per-sample Python list work in the simulators' hot
    loop), and percentile queries share one sorted copy computed on first
    use after the run — repeated p50/p95/p99 calls do not re-sort.  Values
    reported are identical to the previous list-based implementation.

    In ``mode="sketch"``, samples stream into a fixed-space
    :class:`repro.utils.sketch.QuantileSketch`: memory stays O(1) in the
    stream length, percentiles are approximate within the sketch's
    documented rank-error bound, count/mean stay exact, and
    :meth:`samples` raises (nothing is retained).

    Parameters
    ----------
    warmup:
        Number of initial samples to discard before statistics are computed.
        The serving simulator uses this to exclude the queue ramp-up transient.
    mode:
        ``"exact"`` (default) buffers every sample; ``"sketch"`` streams
        into a fixed-space quantile sketch.
    """

    __slots__ = ("_warmup", "_buffer", "_count", "_sorted", "_sketch")

    def __init__(self, warmup: int = 0, mode: str = "exact") -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if mode not in ("exact", "sketch"):
            raise ValueError(f"mode must be 'exact' or 'sketch', got {mode!r}")
        self._warmup = warmup
        self._buffer = np.empty(256, dtype=np.float64)
        self._count = 0
        self._sorted: "np.ndarray | None" = None
        self._sketch: Optional[QuantileSketch] = (
            QuantileSketch() if mode == "sketch" else None
        )

    @property
    def mode(self) -> str:
        """``"exact"`` or ``"sketch"``."""
        return "exact" if self._sketch is None else "sketch"

    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        capacity = self._buffer.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._count] = self._buffer[: self._count]
            self._buffer = grown

    def reset(self) -> None:
        """Discard all samples; capacity is kept, the sort cache is dropped.

        Long-lived consumers (the digital-twin service's per-window state)
        reuse one tracker across event-time windows; dropping the cached
        sort here is what keeps a percentile computed before the reset from
        leaking into the next window's statistics.
        """
        self._count = 0
        self._sorted = None
        if self._sketch is not None:
            self._sketch = QuantileSketch()

    def add(self, value: float) -> None:
        """Record one sample.

        Invalidates the cached sort, so a percentile computed *before* this
        call never masks samples recorded after it — the
        record-after-percentile staleness contract pinned by
        ``tests/test_utils_stats.py::TestTrackerSortCacheInvalidation``.
        """
        count = self._count
        if self._sketch is not None:
            self._count = count + 1
            if count >= self._warmup:
                self._sketch.add(value)
            return
        buffer = self._buffer
        if count == buffer.shape[0]:
            self._reserve(1)
            buffer = self._buffer
        buffer[count] = value
        self._count = count + 1
        self._sorted = None

    def extend(self, values: "Union[Iterable[float], np.ndarray]") -> None:
        """Record many samples (invalidates the cached sort, like :meth:`add`).

        An ``ndarray`` argument takes a bulk fast path — one capacity
        reservation and one slice copy, no per-element iteration — which is
        what the chunked simulator paths feed; lists and other iterables
        convert first.  Recorded values are identical either way.
        """
        if isinstance(values, np.ndarray):
            arr = values.astype(np.float64, copy=False)
        elif isinstance(values, (list, tuple)):
            arr = np.asarray(values, dtype=np.float64)
        else:
            arr = np.fromiter(values, dtype=np.float64)
        if self._sketch is not None:
            skip = max(0, self._warmup - self._count)
            self._count += int(arr.shape[0])
            if skip < arr.shape[0]:
                self._sketch.extend(arr[skip:])
            return
        self._reserve(arr.shape[0])
        self._buffer[self._count : self._count + arr.shape[0]] = arr
        self._count += arr.shape[0]
        self._sorted = None

    def merge(self, other: "PercentileTracker") -> None:
        """Fold ``other``'s post-warmup samples into this tracker.

        Both trackers must be warmup-free (aggregation trackers are) and
        share a mode.  In exact mode the samples concatenate; in sketch
        mode the underlying sketches merge in fixed space — the whole point
        of sketch-mode window aggregation.
        """
        if self._warmup or other._warmup:
            raise ValueError("merge supports warmup-free trackers only")
        if other.mode != self.mode:
            raise ValueError(
                f"cannot merge a {other.mode!r}-mode tracker into {self.mode!r}"
            )
        if self._sketch is not None:
            assert other._sketch is not None  # same mode, checked above
            self._sketch.merge(other._sketch)
            self._count += other._count
            return
        self.extend(other._post_warmup())

    @property
    def count(self) -> int:
        """Number of samples recorded after the warmup window."""
        return max(0, self._count - self._warmup)

    @property
    def raw_count(self) -> int:
        """Total number of samples recorded, including warmup."""
        return self._count

    def _post_warmup(self) -> np.ndarray:
        return self._buffer[self._warmup : self._count]

    def _post_warmup_sorted(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(self._post_warmup())
        return self._sorted

    def samples(self) -> List[float]:
        """Return post-warmup samples (a copy, in insertion order).

        Raises ``ValueError`` in sketch mode: the sketch retains a bounded
        summary, not the samples, and silently returning the summary items
        would misrepresent the stream.
        """
        if self._sketch is not None:
            raise ValueError("samples are not retained in sketch mode")
        return self._post_warmup().tolist()

    def footprint(self) -> int:
        """Floats currently retained: every post-warmup sample in exact
        mode, the bounded sketch summary in sketch mode."""
        if self._sketch is not None:
            return self._sketch.footprint()
        return max(0, self._count - self._warmup)

    def percentile(self, pct: float) -> float:
        """Return the ``pct``-th percentile of post-warmup samples.

        Exact in the default mode; within the sketch's documented
        rank-error bound in sketch mode.
        """
        if self._sketch is not None:
            return self._sketch.percentile(pct)
        return percentile(self._post_warmup_sorted(), pct)

    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    def p95(self) -> float:
        """95th-percentile latency (the paper's SLA metric)."""
        return self.percentile(95)

    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    def mean(self) -> float:
        """Mean of post-warmup samples (exact in both modes)."""
        if self._sketch is not None:
            if self._sketch.count == 0:
                raise ValueError("no samples recorded after warmup")
            return self._sketch.mean()
        post = self._post_warmup()
        if post.shape[0] == 0:
            raise ValueError("no samples recorded after warmup")
        return float(np.mean(post))


class StreamingStats:
    """Constant-space running count/mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample seen; raises if empty."""
        if not self._count:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample seen; raises if empty."""
        if not self._count:
            raise ValueError("no samples recorded")
        return self._max

    @property
    def total(self) -> float:
        """Sum of samples."""
        return self._mean * self._count
