"""Small argument-validation helpers shared across the library.

These raise ``ValueError`` with a consistent message format so call sites can
validate constructor arguments in one line each.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: Number) -> Number:
    """Return ``value`` if in [0, 1], else raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Return ``value`` if in [low, high], else raise ``ValueError``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
