"""Deterministic random-number-generator management.

Every stochastic component of the library (arrival processes, query-size
samplers, simulators) takes either a seed or a ``numpy.random.Generator``.
``RngFactory`` derives independent child generators from a root seed so that
experiments are reproducible end to end while components remain statistically
independent of each other.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or ``None``.

    Passing an existing generator returns it unchanged, so components can share
    a stream when a caller wants correlated sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Derive independent, reproducible child generators from a root seed.

    Children are keyed by name; requesting the same name twice returns
    generators seeded identically, which makes component-level replay possible
    (e.g. regenerate exactly the same query trace).

    Example
    -------
    >>> factory = RngFactory(seed=42)
    >>> arrivals = factory.child("arrivals")
    >>> sizes = factory.child("sizes")
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self._root_seed = seed

    @property
    def seed(self) -> Optional[int]:
        """The root seed this factory was constructed with."""
        return self._root_seed

    def child(self, name: str) -> np.random.Generator:
        """Return a generator derived deterministically from the root and ``name``.

        The name is folded into the spawn key with a process-independent
        digest (CRC-32).  Python's built-in ``hash`` must not be used here:
        string hashing is salted per interpreter process (PYTHONHASHSEED), so
        it would make "seeded" streams differ from run to run.
        """
        digest = zlib.crc32(f"repro-rng/{name}".encode("utf-8"))
        child_seq = np.random.SeedSequence(
            entropy=self._seed_seq.entropy, spawn_key=(digest,)
        )
        return np.random.default_rng(child_seq)

    def spawn(self, count: int) -> List[np.random.Generator]:
        """Return ``count`` independent child generators (positional)."""
        check = int(count)
        if check <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        return [np.random.default_rng(s) for s in self._seed_seq.spawn(check)]
