"""DeepRecInfra facade and datacenter-cluster simulation."""

from repro.infra.datacenter import (
    ClusterNode,
    ClusterResult,
    DatacenterCluster,
    ScaledCPUEngine,
)
from repro.infra.deeprecinfra import DeepRecInfra, InfraConfig

__all__ = [
    "ClusterNode",
    "ClusterResult",
    "DatacenterCluster",
    "ScaledCPUEngine",
    "DeepRecInfra",
    "InfraConfig",
]
