"""Datacenter-scale cluster simulation.

Two of the paper's experiments need more than a single simulated server:

* **Fig. 7** shows that the latency distribution measured on a handful of
  machines tracks the datacenter-wide distribution to within ~10 %, which
  justifies studying tail behaviour on a small subsample of the fleet.
* **Fig. 13** deploys the batch-size optimisation on a production cluster of
  hundreds of heterogeneous machines receiving live (diurnal) traffic for
  24 hours and reports 1.39x / 1.31x reductions in p95 / p99 latency.

:class:`DatacenterCluster` models a fleet of inference servers with per-node
heterogeneity (platform mix and a small per-node speed spread) and
trace-driven execution.  Since the fleet unification, every run executes as
**one** shared-heap :class:`~repro.serving.cluster.ClusterSimulator` pass:
queries are routed online by a pluggable balancing policy (``random`` by
default, reproducing the historical uniform pre-partitioning as an online
policy) instead of being pre-partitioned into N independent single-server
simulations.  Node engines ride the dense latency-table fast path through
:class:`~repro.execution.latency_table.ScaledLatencyTable` views, and the
warmup window is fleet-wide — the first ``warmup_fraction`` of queries *by
global arrival order* are excluded, rather than a per-node fraction that
starved lightly-loaded nodes of warmup entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.execution.engine import EnginePair
from repro.execution.scaled_engine import ScaledCPUEngine
from repro.queries.query import Query
from repro.queries.size_dist import ProductionQuerySizes, QuerySizeDistribution
from repro.queries.trace import DiurnalPattern, QueryTrace, generate_diurnal_trace
from repro.serving.capacity import estimate_upper_bound_qps
from repro.serving.cluster import (
    ClusterServer,
    ClusterSimulationResult,
    ClusterSimulator,
    LoadBalancer,
    ServerLoadSummary,
    heterogeneous_fleet,
)
from repro.serving.simulator import ServingConfig, SimulationResult, late_window_p95
from repro.utils.rng import RngFactory
from repro.utils.stats import max_relative_cdf_gap
from repro.utils.validation import check_positive

__all__ = [
    "ClusterNode",
    "ClusterResult",
    "DatacenterCluster",
    "ScaledCPUEngine",
]


@dataclass(frozen=True)
class ClusterNode:
    """One inference server in the fleet."""

    node_id: int
    platform_name: str
    speed_factor: float


@dataclass
class ClusterResult:
    """Aggregate and per-node latency statistics from one cluster run."""

    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    per_node_results: Dict[int, SimulationResult]
    latencies_s: List[float] = field(repr=False, default_factory=list)
    #: Balancing policy that routed the run's queries.
    policy: str = "random"
    #: Scalar latency-table fallbacks taken across the fleet's engines during
    #: the run's lifetime; 0 means the replay stayed on the dense fast path.
    scalar_fallbacks: int = 0
    #: The underlying fleet-level measurement (per-server load shares,
    #: utilisation, drain time) from the shared-heap simulator pass.
    fleet: Optional[ClusterSimulationResult] = field(default=None, repr=False)

    @property
    def num_nodes(self) -> int:
        """Number of nodes that processed traffic."""
        return len(self.per_node_results)

    def node_latencies(self, node_ids: Sequence[int]) -> List[float]:
        """Pooled query latencies of a subset of nodes."""
        pooled: List[float] = []
        for node_id in node_ids:
            if node_id not in self.per_node_results:
                raise KeyError(f"node {node_id} not present in this result")
            pooled.extend(self.per_node_results[node_id].latencies_s)
        return pooled

    def query_shares(self) -> Dict[int, float]:
        """Fraction of the stream each node absorbed (by node id)."""
        total = sum(
            result.num_queries for result in self.per_node_results.values()
        )
        if not total:
            return {node_id: 0.0 for node_id in self.per_node_results}
        return {
            node_id: result.num_queries / total
            for node_id, result in self.per_node_results.items()
        }

    def subsample_gap(self, node_ids: Sequence[int]) -> float:
        """Max relative CDF gap between a node subsample and the whole fleet.

        This is the Fig. 7 metric: the paper reports the subsample tracking
        the datacenter distribution to within ~10 %.
        """
        return max_relative_cdf_gap(self.latencies_s, self.node_latencies(node_ids))


class DatacenterCluster:
    """A fleet of heterogeneous inference servers behind a pluggable balancer."""

    def __init__(
        self,
        model: str,
        num_nodes: int = 20,
        platform_mix: Optional[Dict[str, float]] = None,
        speed_spread: float = 0.06,
        num_cores: int = 0,
        seed: int = 0,
    ) -> None:
        check_positive("num_nodes", num_nodes)
        self._model = model
        self._num_cores = num_cores
        self._rng_factory = RngFactory(seed)
        # The fleet template: per-node scaled engines drawn once at
        # construction; run() re-binds them to the requested per-run config.
        # The template config's batch size is never executed.
        self._fleet: List[ClusterServer] = heterogeneous_fleet(
            model,
            ServingConfig(batch_size=1, num_cores=num_cores),
            num_nodes,
            platform_mix=platform_mix,
            speed_spread=speed_spread,
            rng=self._rng_factory.child("cluster-nodes"),
        )
        self._nodes: List[ClusterNode] = [
            ClusterNode(
                node_id=index,
                platform_name=server.engines.cpu.platform.name,
                speed_factor=server.engines.cpu.speed_factor,
            )
            for index, server in enumerate(self._fleet)
        ]
        self._engines: Dict[int, EnginePair] = {
            index: server.engines for index, server in enumerate(self._fleet)
        }
        # Randomised balancing policies draw from a stream derived from the
        # cluster seed, so two clusters with different seeds route differently.
        self._balancer_seed = int(
            self._rng_factory.child("load-balancer").integers(0, 2**31)
        )

    @property
    def model(self) -> str:
        """Zoo key of the model the fleet serves."""
        return self._model

    @property
    def nodes(self) -> List[ClusterNode]:
        """The fleet's nodes."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Fleet size."""
        return len(self._nodes)

    # ------------------------------------------------------------------ #

    def estimated_capacity_qps(
        self, batch_size: int, mean_query_size: Optional[float] = None
    ) -> float:
        """Optimistic fleet-wide throughput bound at a given batch size.

        Sums each node's upper-bound capacity using that node's platform and
        speed factor.  Used by the Fig. 13 experiment to pick an offered load
        that sits just below the fixed configuration's saturation point
        regardless of the fleet's platform mix.
        """
        check_positive("batch_size", batch_size)
        if mean_query_size is None:
            mean_query_size = ProductionQuerySizes().mean()
        config = ServingConfig(batch_size=batch_size, num_cores=self._num_cores)
        return sum(
            estimate_upper_bound_qps(self._engines[node.node_id], config, mean_query_size)
            for node in self._nodes
        )

    def _node_result(
        self,
        config: ServingConfig,
        summary: ServerLoadSummary,
        latencies: List[float],
        fleet: ClusterSimulationResult,
    ) -> SimulationResult:
        """Per-node :class:`SimulationResult` rebuilt from one server's kernel.

        Timing fields that only exist fleet-wide (duration, arrival span,
        drain) carry the shared-clock values; percentiles of a node that
        measured no post-warmup queries are reported as 0.0 rather than
        raising, since the fleet-wide statistics remain well defined.
        """
        if latencies:
            samples = np.asarray(latencies)
            p50 = float(np.percentile(samples, 50))
            p95 = float(np.percentile(samples, 95))
            p99 = float(np.percentile(samples, 99))
            mean = float(samples.mean())
        else:
            p50 = p95 = p99 = mean = 0.0
        return SimulationResult(
            config=config,
            num_queries=summary.num_queries,
            measured_queries=len(latencies),
            duration_s=fleet.duration_s,
            p50_latency_s=p50,
            p95_latency_s=p95,
            p99_latency_s=p99,
            mean_latency_s=mean,
            achieved_qps=summary.num_queries / fleet.duration_s,
            offered_qps=summary.num_queries / fleet.arrival_span_s,
            cpu_utilization=summary.cpu_utilization,
            gpu_utilization=summary.gpu_utilization,
            gpu_work_fraction=summary.gpu_work_fraction,
            p95_late_window_s=late_window_p95(latencies),
            drain_s=fleet.drain_s,
            arrival_span_s=fleet.arrival_span_s,
            latencies_s=list(latencies),
        )

    def _scalar_fallbacks(self) -> int:
        """Scalar fallbacks across the fleet's distinct base latency tables."""
        bases = {}
        for server in self._fleet:
            table = getattr(server.engines.cpu, "latency_table", None)
            if table is None:
                continue
            base = getattr(table, "base", table)
            bases[id(base)] = base
        return sum(base.scalar_fallbacks for base in bases.values())

    def run(
        self,
        queries: Sequence[Query],
        batch_size: int,
        warmup_fraction: float = 0.05,
        policy: Union[str, LoadBalancer] = "random",
    ) -> ClusterResult:
        """Serve ``queries`` across the fleet at a fixed per-request batch size.

        The whole stream runs through one shared-heap
        :class:`~repro.serving.cluster.ClusterSimulator`; ``policy`` selects
        the balancing policy (any registered name or a
        :class:`~repro.serving.cluster.LoadBalancer` instance), defaulting to
        the legacy uniform-``random`` assignment.  ``warmup_fraction`` is
        fleet-wide: the first fraction of queries by global arrival order is
        excluded from every statistic, so lightly-loaded nodes are not
        systematically denied a warmup window.
        """
        check_positive("batch_size", batch_size)
        if not queries:
            raise ValueError("cannot run a cluster simulation with no queries")
        config = ServingConfig(
            batch_size=batch_size,
            num_cores=self._num_cores,
            warmup_fraction=warmup_fraction,
        )
        servers = [
            ClusterServer(engines=server.engines, config=config, name=server.name)
            for server in self._fleet
        ]
        simulator = ClusterSimulator(
            servers,
            balancer=policy,
            balancer_seed=self._balancer_seed,
            collect_per_server_latencies=True,
        )
        fleet = simulator.run(queries)

        per_node_results: Dict[int, SimulationResult] = {}
        assert fleet.per_server_latencies is not None
        for node, summary, latencies in zip(
            self._nodes, fleet.per_server, fleet.per_server_latencies
        ):
            if summary.num_queries == 0:
                continue
            per_node_results[node.node_id] = self._node_result(
                config, summary, latencies, fleet
            )
        if not per_node_results:
            raise ValueError("no node processed any measurable queries")
        return ClusterResult(
            p50_latency_s=fleet.p50_latency_s,
            p95_latency_s=fleet.p95_latency_s,
            p99_latency_s=fleet.p99_latency_s,
            per_node_results=per_node_results,
            latencies_s=fleet.latencies_s,
            policy=fleet.policy,
            scalar_fallbacks=self._scalar_fallbacks(),
            fleet=fleet,
        )

    def run_diurnal(
        self,
        batch_size: int,
        base_rate_qps: float,
        duration_s: float,
        pattern: Optional[DiurnalPattern] = None,
        sizes: Optional[QuerySizeDistribution] = None,
        seed: Optional[int] = None,
        policy: Union[str, LoadBalancer] = "random",
    ) -> ClusterResult:
        """Serve a diurnally modulated trace (the Fig. 13 protocol).

        ``seed`` controls the generated trace.  When ``None`` (the default)
        it is derived from the cluster's own seed, so two clusters built with
        different seeds replay *different* traces out of the box — the old
        behaviour (a hardcoded default trace seed shared by every cluster)
        silently correlated experiments that looked independent.  Pass an
        explicit ``seed`` to replay one trace across clusters on purpose.
        """
        if seed is None:
            seed = int(self._rng_factory.child("diurnal-trace").integers(0, 2**31))
        trace: QueryTrace = generate_diurnal_trace(
            base_rate_qps=base_rate_qps,
            duration_s=duration_s,
            pattern=pattern,
            sizes=sizes if sizes is not None else ProductionQuerySizes(),
            seed=seed,
        )
        return self.run(trace.queries, batch_size, policy=policy)
