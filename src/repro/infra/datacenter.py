"""Datacenter-scale cluster simulation.

Two of the paper's experiments need more than a single simulated server:

* **Fig. 7** shows that the latency distribution measured on a handful of
  machines tracks the datacenter-wide distribution to within ~10 %, which
  justifies studying tail behaviour on a small subsample of the fleet.
* **Fig. 13** deploys the batch-size optimisation on a production cluster of
  hundreds of heterogeneous machines receiving live (diurnal) traffic for
  24 hours and reports 1.39x / 1.31x reductions in p95 / p99 latency.

:class:`DatacenterCluster` models a fleet of inference servers with per-node
heterogeneity (platform mix and a small per-node speed spread), a random
load balancer, and trace-driven execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.execution.cpu_engine import CPUEngine, RequestLatency
from repro.execution.engine import EnginePair, build_cpu_engine
from repro.queries.query import Query
from repro.queries.size_dist import ProductionQuerySizes, QuerySizeDistribution
from repro.queries.trace import DiurnalPattern, QueryTrace, generate_diurnal_trace
from repro.serving.capacity import estimate_upper_bound_qps
from repro.serving.simulator import ServingConfig, ServingSimulator, SimulationResult
from repro.utils.rng import RngFactory
from repro.utils.stats import max_relative_cdf_gap
from repro.utils.validation import check_positive


class ScaledCPUEngine:
    """A CPU engine whose latencies are scaled by a per-node speed factor.

    Production fleets are heterogeneous even within a platform generation
    (DVFS, memory population, co-located workloads); a node with
    ``speed_factor=1.05`` is 5 % slower than nominal.
    """

    def __init__(self, engine: CPUEngine, speed_factor: float = 1.0) -> None:
        check_positive("speed_factor", speed_factor)
        self._engine = engine
        self._speed_factor = speed_factor

    @property
    def platform(self):
        """The underlying platform (unscaled)."""
        return self._engine.platform

    @property
    def model(self):
        """The model served by this node."""
        return self._engine.model

    @property
    def speed_factor(self) -> float:
        """Latency multiplier applied to the nominal engine."""
        return self._speed_factor

    def request_latency(self, batch_size: int, active_cores: int = 1) -> RequestLatency:
        """Scaled per-request latency components."""
        nominal = self._engine.request_latency(batch_size, active_cores)
        factor = self._speed_factor
        return RequestLatency(
            compute_s=nominal.compute_s * factor,
            memory_s=nominal.memory_s * factor,
            overhead_s=nominal.overhead_s * factor,
        )

    def request_latency_s(self, batch_size: int, active_cores: int = 1) -> float:
        """Scaled scalar request latency."""
        return self.request_latency(batch_size, active_cores).total_s


@dataclass(frozen=True)
class ClusterNode:
    """One inference server in the fleet."""

    node_id: int
    platform_name: str
    speed_factor: float


@dataclass
class ClusterResult:
    """Aggregate and per-node latency statistics from one cluster run."""

    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    per_node_results: Dict[int, SimulationResult]
    latencies_s: List[float] = field(repr=False, default_factory=list)

    @property
    def num_nodes(self) -> int:
        """Number of nodes that processed traffic."""
        return len(self.per_node_results)

    def node_latencies(self, node_ids: Sequence[int]) -> List[float]:
        """Pooled query latencies of a subset of nodes."""
        pooled: List[float] = []
        for node_id in node_ids:
            if node_id not in self.per_node_results:
                raise KeyError(f"node {node_id} not present in this result")
            pooled.extend(self.per_node_results[node_id].latencies_s)
        return pooled

    def subsample_gap(self, node_ids: Sequence[int]) -> float:
        """Max relative CDF gap between a node subsample and the whole fleet.

        This is the Fig. 7 metric: the paper reports the subsample tracking
        the datacenter distribution to within ~10 %.
        """
        return max_relative_cdf_gap(self.latencies_s, self.node_latencies(node_ids))


class DatacenterCluster:
    """A fleet of heterogeneous inference servers behind a random load balancer."""

    def __init__(
        self,
        model: str,
        num_nodes: int = 20,
        platform_mix: Optional[Dict[str, float]] = None,
        speed_spread: float = 0.06,
        num_cores: int = 0,
        seed: int = 0,
    ) -> None:
        check_positive("num_nodes", num_nodes)
        if not 0.0 <= speed_spread < 0.5:
            raise ValueError(f"speed_spread must be in [0, 0.5), got {speed_spread}")
        mix = platform_mix if platform_mix is not None else {"skylake": 0.5, "broadwell": 0.5}
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("platform_mix weights must sum to a positive value")
        self._model = model
        self._num_cores = num_cores
        self._rng_factory = RngFactory(seed)
        rng = self._rng_factory.child("cluster-nodes")

        platform_names = list(mix)
        probabilities = np.array([mix[name] for name in platform_names]) / total
        self._nodes: List[ClusterNode] = []
        self._engines: Dict[int, EnginePair] = {}
        for node_id in range(num_nodes):
            platform_name = str(rng.choice(platform_names, p=probabilities))
            speed_factor = float(1.0 + rng.uniform(-speed_spread, speed_spread))
            self._nodes.append(ClusterNode(node_id, platform_name, speed_factor))
            base_engine = build_cpu_engine(model, platform_name)
            scaled = ScaledCPUEngine(base_engine, speed_factor)
            self._engines[node_id] = EnginePair(cpu=scaled, gpu=None)

    @property
    def model(self) -> str:
        """Zoo key of the model the fleet serves."""
        return self._model

    @property
    def nodes(self) -> List[ClusterNode]:
        """The fleet's nodes."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Fleet size."""
        return len(self._nodes)

    # ------------------------------------------------------------------ #

    def estimated_capacity_qps(
        self, batch_size: int, mean_query_size: Optional[float] = None
    ) -> float:
        """Optimistic fleet-wide throughput bound at a given batch size.

        Sums each node's upper-bound capacity using that node's platform and
        speed factor.  Used by the Fig. 13 experiment to pick an offered load
        that sits just below the fixed configuration's saturation point
        regardless of the fleet's platform mix.
        """
        check_positive("batch_size", batch_size)
        if mean_query_size is None:
            mean_query_size = ProductionQuerySizes().mean()
        config = ServingConfig(batch_size=batch_size, num_cores=self._num_cores)
        return sum(
            estimate_upper_bound_qps(self._engines[node.node_id], config, mean_query_size)
            for node in self._nodes
        )

    def _partition(self, queries: Sequence[Query]) -> Dict[int, List[Query]]:
        """Randomly load-balance queries across nodes (uniform)."""
        rng = self._rng_factory.child("load-balancer")
        assignments = rng.integers(0, self.num_nodes, size=len(queries))
        per_node: Dict[int, List[Query]] = {node.node_id: [] for node in self._nodes}
        for query, node_id in zip(queries, assignments):
            per_node[int(node_id)].append(query)
        return per_node

    def run(
        self,
        queries: Sequence[Query],
        batch_size: int,
        warmup_fraction: float = 0.05,
    ) -> ClusterResult:
        """Serve ``queries`` across the fleet at a fixed per-request batch size."""
        check_positive("batch_size", batch_size)
        if not queries:
            raise ValueError("cannot run a cluster simulation with no queries")
        per_node = self._partition(queries)
        per_node_results: Dict[int, SimulationResult] = {}
        pooled: List[float] = []
        for node in self._nodes:
            node_queries = per_node[node.node_id]
            if not node_queries:
                continue
            config = ServingConfig(
                batch_size=batch_size,
                num_cores=self._num_cores,
                warmup_fraction=warmup_fraction,
            )
            simulator = ServingSimulator(self._engines[node.node_id], config)
            result = simulator.run(node_queries)
            per_node_results[node.node_id] = result
            pooled.extend(result.latencies_s)
        if not pooled:
            raise ValueError("no node processed any measurable queries")
        pooled_array = np.asarray(pooled)
        return ClusterResult(
            p50_latency_s=float(np.percentile(pooled_array, 50)),
            p95_latency_s=float(np.percentile(pooled_array, 95)),
            p99_latency_s=float(np.percentile(pooled_array, 99)),
            per_node_results=per_node_results,
            latencies_s=pooled,
        )

    def run_diurnal(
        self,
        batch_size: int,
        base_rate_qps: float,
        duration_s: float,
        pattern: Optional[DiurnalPattern] = None,
        sizes: Optional[QuerySizeDistribution] = None,
        seed: int = 17,
    ) -> ClusterResult:
        """Serve a diurnally modulated trace (the Fig. 13 protocol)."""
        trace: QueryTrace = generate_diurnal_trace(
            base_rate_qps=base_rate_qps,
            duration_s=duration_s,
            pattern=pattern,
            sizes=sizes if sizes is not None else ProductionQuerySizes(),
            seed=seed,
        )
        return self.run(trace.queries, batch_size)
