"""DeepRecInfra: the end-to-end modelling infrastructure (Fig. 8).

DeepRecInfra ties together the three components the paper identifies as
necessary for representative at-scale recommendation studies:

1. the suite of industry-representative recommendation models (Table I),
2. per-use-case SLA tail-latency targets (Table II, with Low/Medium/High
   tiers), and
3. real-time query serving with production-like arrival rates (Poisson) and
   working-set sizes (heavy-tail).

An :class:`InfraConfig` names one point in that space; :class:`DeepRecInfra`
materialises it into engines, load generators, and serving simulations so the
scheduler and the experiment drivers can run against a single, consistent
object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.execution.engine import EnginePair, build_engine_pair
from repro.hardware.power import SystemPowerModel
from repro.models.zoo import available_models, get_config
from repro.queries.arrival import ArrivalProcess, PoissonArrival, get_arrival_process
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.queries.size_dist import (
    ProductionQuerySizes,
    QuerySizeDistribution,
    get_size_distribution,
)
from repro.serving.capacity import CapacityResult, find_max_qps
from repro.serving.simulator import ServingConfig, ServingSimulator, SimulationResult
from repro.serving.sla import SLATarget, SLATier, sla_target
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class InfraConfig:
    """One DeepRecInfra configuration point.

    Attributes
    ----------
    model:
        Zoo key of the recommendation model.
    cpu_platform:
        ``"skylake"`` or ``"broadwell"``.
    gpu_platform:
        Accelerator name or ``None`` for a CPU-only system.
    arrival_process:
        ``"poisson"`` (production default), ``"fixed"``, or ``"uniform"``.
    size_distribution:
        ``"production"`` (default), ``"lognormal"``, ``"normal"``.
    num_cores:
        CPU worker cores (0 = all cores of the platform).
    seed:
        Root seed for the load generator.
    """

    model: str = "dlrm-rmc1"
    cpu_platform: str = "skylake"
    gpu_platform: Optional[str] = "gtx1080ti"
    arrival_process: str = "poisson"
    size_distribution: str = "production"
    num_cores: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model not in available_models():
            raise ValueError(
                f"unknown model {self.model!r}; available: {available_models()}"
            )
        if self.num_cores < 0:
            raise ValueError(f"num_cores must be >= 0, got {self.num_cores}")


class DeepRecInfra:
    """Materialised DeepRecInfra instance for one configuration point."""

    def __init__(self, config: InfraConfig) -> None:
        self._config = config
        self._engines = build_engine_pair(
            config.model, config.cpu_platform, config.gpu_platform
        )
        sizes = get_size_distribution(config.size_distribution)
        arrival = get_arrival_process(config.arrival_process, rate_qps=100.0)
        self._load_generator = LoadGenerator(
            arrival=arrival, sizes=sizes, seed=config.seed
        )
        self._power_model = SystemPowerModel(
            self._engines.cpu.platform,
            self._engines.gpu.platform if self._engines.gpu else None,
        )

    @property
    def config(self) -> InfraConfig:
        """The configuration this instance was built from."""
        return self._config

    @property
    def engines(self) -> EnginePair:
        """CPU (and optional GPU) engines for the configured model/platform."""
        return self._engines

    @property
    def load_generator(self) -> LoadGenerator:
        """Load generator with the configured arrival and size distributions."""
        return self._load_generator

    @property
    def power_model(self) -> SystemPowerModel:
        """System power model (CPU plus optional accelerator)."""
        return self._power_model

    @property
    def model_config(self):
        """Table I architecture configuration of the model."""
        return get_config(self._config.model)

    def sla(self, tier: SLATier = SLATier.MEDIUM) -> SLATarget:
        """SLA tail-latency target for the configured model at ``tier``."""
        return sla_target(self._config.model, tier)

    # ------------------------------------------------------------------ #

    def generate_queries(self, num_queries: int, rate_qps: float) -> Sequence[Query]:
        """Generate a query stream at ``rate_qps``."""
        check_positive("num_queries", num_queries)
        return self._load_generator.with_rate(rate_qps).generate(num_queries)

    def simulate(
        self, serving_config: ServingConfig, queries: Sequence[Query]
    ) -> SimulationResult:
        """Run the serving simulator for an explicit query stream."""
        return ServingSimulator(self._engines, serving_config).run(queries)

    def capacity(
        self,
        serving_config: ServingConfig,
        tier: SLATier = SLATier.MEDIUM,
        num_queries: int = 800,
        iterations: int = 6,
    ) -> CapacityResult:
        """Max QPS under the tier's p95 SLA for one serving configuration."""
        return find_max_qps(
            self._engines,
            serving_config,
            self.sla(tier).latency_s,
            self._load_generator,
            num_queries=num_queries,
            iterations=iterations,
        )
