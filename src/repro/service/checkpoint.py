"""Crash-safe window checkpointing for the digital-twin service.

The twin's only irreplaceable state is the sequence of closed windows it
has observed — everything else (simulators, capacity predictions, rate
trackers) is a deterministic function of that sequence.  So the service
journals exactly that: one JSON line per closed window, appended to
``windows.jsonl`` under the checkpoint directory *after* the window has
been observed.  On restart the journal is replayed through
:meth:`~repro.service.twin.DigitalTwin.restore` (history conservation, no
re-simulation) and the
:class:`~repro.service.windows.WindowManager` is fast-forwarded past the
journalled stream position — the resumed service reports bit-identical
cumulative measurements without reprocessing a single event.

Record format (one per line)::

    {"index": 3, "start_s": 30.0, "end_s": 40.0,
     "queries": [[query_id, arrival_time, size], ...]}

A torn final line — the crash happened mid-append — is tolerated:
:meth:`WindowJournal.load` stops at the first corrupt record and exposes
the count in :attr:`WindowJournal.corrupt_records`.  Because windows are
journalled only after observation, a crash between observe and append
re-observes that window on resume (at-least-once), never skips it.

>>> import tempfile
>>> from repro.queries.query import Query
>>> from repro.service.windows import Window
>>> with tempfile.TemporaryDirectory() as root:
...     journal = WindowJournal(root)
...     journal.append(Window(0, 0.0, 10.0, (Query(0, 1.0, 16),)))
...     with open(journal.path, "a") as torn:
...         _ = torn.write('{"index": 1, "start_s')  # crash mid-append
...     journal = WindowJournal(root)
...     ([w.index for w in journal.load()], journal.corrupt_records)
([0], 1)
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Union

from repro.queries.query import Query
from repro.service.windows import Window

#: Journal file name under the checkpoint directory.
JOURNAL_NAME = "windows.jsonl"


class WindowJournal:
    """Append-only JSONL journal of observed windows in one directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._path = self._dir / JOURNAL_NAME
        #: Records dropped by the last :meth:`load` (torn tail of a crash).
        self.corrupt_records = 0

    @property
    def path(self) -> Path:
        """The journal file (may not exist before the first append)."""
        return self._path

    def append(self, window: Window) -> None:
        """Durably append one observed window (fsync'd: crash-safe)."""
        record = {
            "index": window.index,
            "start_s": window.start_s,
            "end_s": window.end_s,
            "queries": [
                [query.query_id, query.arrival_time, query.size]
                for query in window.queries
            ],
        }
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> List[Window]:
        """Replay the journal: every intact window, in journalled order.

        Stops at the first corrupt record (a torn write from a crash
        mid-append) rather than raising — everything before it is intact
        by construction, everything after it is unreachable context.  The
        dropped count lands in :attr:`corrupt_records`.
        """
        self.corrupt_records = 0
        if not self._path.exists():
            return []
        windows: List[Window] = []
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                    window = Window(
                        index=int(record["index"]),
                        start_s=float(record["start_s"]),
                        end_s=float(record["end_s"]),
                        queries=tuple(
                            Query(
                                query_id=int(fields[0]),
                                arrival_time=float(fields[1]),
                                size=int(fields[2]),
                            )
                            for fields in record["queries"]
                        ),
                    )
                except (
                    json.JSONDecodeError,
                    KeyError,
                    IndexError,
                    TypeError,
                    ValueError,
                ):
                    # This line plus anything after it (unreachable once
                    # the journal's tail integrity is gone).
                    self.corrupt_records = 1 + sum(1 for _ in handle)
                    break
                windows.append(window)
        return windows

    def __repr__(self) -> str:
        return f"WindowJournal(path={str(self._path)!r})"
