"""Ingest loop for the digital-twin service: a trivial line protocol.

The broker is deliberately not the substance of the service — the windowing
and dual-config re-simulation are — so ingest is a newline-delimited event
protocol any producer can speak over TCP, stdin, or an in-process replay:

* JSON object per line: ``{"query_id": 7, "arrival_time": 12.5, "size": 64}``
* or bare CSV per line: ``7,12.5,64``
* blank lines and ``#`` comments are ignored.

Timestamps are **event time** (seconds on the trace's clock), exactly the
``arrival_time`` the batch drivers feed the simulators — so a recorded
:class:`~repro.queries.trace.QueryTrace` replays through the service and
produces bit-identical cumulative measurements.

:class:`IngestPipeline` is the glue: parse line → window manager → twin →
report sink.  :func:`serve_tcp` and :func:`run_stdin` are thin asyncio /
blocking front ends over it.

>>> parse_event('{"query_id": 1, "arrival_time": 2.5, "size": 32}')
Query(query_id=1, arrival_time=2.5, size=32)
>>> parse_event("2, 3.75, 64")
Query(query_id=2, arrival_time=3.75, size=64)
>>> parse_event("# comment") is None
True
>>> parse_event("not an event")
Traceback (most recent call last):
    ...
ValueError: unparseable event line: 'not an event'
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Callable, Iterable, List, Optional

from repro.queries.query import Query
from repro.service.checkpoint import WindowJournal
from repro.service.twin import DigitalTwin, TwinWindowReport
from repro.service.windows import Window, WindowManager

#: Maximum accepted line length (a malformed producer must not buffer-bomb
#: the service; real event lines are well under 200 bytes).
MAX_LINE_BYTES = 64 * 1024


def parse_event(line: str) -> Optional[Query]:
    """Parse one protocol line into a :class:`~repro.queries.query.Query`.

    Returns ``None`` for blank/comment lines; raises :class:`ValueError`
    for anything else that does not parse (the pipeline counts those and
    keeps going — one bad producer must not wedge the service).
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    try:
        if text.startswith("{"):
            payload = json.loads(text)
            return Query(
                query_id=int(payload["query_id"]),
                arrival_time=float(payload["arrival_time"]),
                size=int(payload["size"]),
            )
        fields = text.split(",")
        if len(fields) == 3:
            return Query(
                query_id=int(fields[0]),
                arrival_time=float(fields[1]),
                size=int(fields[2]),
            )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError):
        pass
    raise ValueError(f"unparseable event line: {text!r}")


class IngestPipeline:
    """Parse → window → re-simulate → publish, as one reusable object.

    Every transport (TCP connections, stdin, the example's in-process
    replay) feeds the same pipeline, so the service behaves identically no
    matter how events arrive.  ``sink`` is called once per closed window
    with the twin's :class:`~repro.service.twin.TwinWindowReport`.

    Resilience knobs: ``journal`` (a
    :class:`~repro.service.checkpoint.WindowJournal`) records every closed
    window *after* it is observed, so a crashed service resumes without
    reprocessing; ``shed_above`` bounds how many backlogged windows one
    ingest batch fully re-simulates — when a stall clears and more windows
    than that close at once, the oldest beyond the budget are *absorbed*
    (history conserved, simulation skipped, counted in
    :attr:`shed_windows`) so the service catches up instead of falling
    further behind.
    """

    def __init__(
        self,
        windows: WindowManager,
        twin: DigitalTwin,
        sink: Optional[Callable[[TwinWindowReport], None]] = None,
        journal: Optional["WindowJournal"] = None,
        shed_above: int = 0,
    ) -> None:
        if shed_above < 0:
            raise ValueError(f"shed_above must be >= 0, got {shed_above}")
        self.windows = windows
        self.twin = twin
        self._sink = sink
        self._journal = journal
        self._shed_above = shed_above
        self.reports: List[TwinWindowReport] = []
        self.malformed_lines = 0
        self.shed_windows = 0
        self.idle_disconnects = 0

    # ------------------------------------------------------------------ #

    def feed(self, query: Query) -> List[TwinWindowReport]:
        """Ingest one already-parsed event."""
        return self._observe_closed(self.windows.add(query))

    def feed_line(self, line: str) -> List[TwinWindowReport]:
        """Ingest one protocol line (malformed lines are counted, not fatal)."""
        try:
            query = parse_event(line)
        except ValueError:
            self.malformed_lines += 1
            return []
        if query is None:
            return []
        return self.feed(query)

    def feed_lines(self, lines: Iterable[str]) -> List[TwinWindowReport]:
        """Ingest many protocol lines; reports for every window they closed."""
        reports: List[TwinWindowReport] = []
        for line in lines:
            reports.extend(self.feed_line(line))
        return reports

    def finish(self) -> List[TwinWindowReport]:
        """End of stream: flush open windows and return their reports."""
        return self._observe_closed(self.windows.flush())

    def _observe_closed(self, closed: List[Window]) -> List[TwinWindowReport]:
        if self._shed_above and len(closed) > self._shed_above:
            # Load shedding: a backlog burst closed more windows than the
            # budget allows re-simulating.  Absorb the oldest beyond it —
            # their events stay in the cumulative history, so every later
            # report is bit-identical to the unshed run — and fully observe
            # only the newest ``shed_above``.
            backlog = len(closed) - self._shed_above
            for window in closed[:backlog]:
                self.twin.absorb(window)
                if self._journal is not None:
                    self._journal.append(window)
            self.shed_windows += backlog
            closed = closed[backlog:]
        reports: List[TwinWindowReport] = []
        for window in closed:
            report = self.twin.observe(window)
            # Journal *after* observing: a crash in between re-observes
            # this window on resume (at-least-once), never skips it.
            if self._journal is not None:
                self._journal.append(window)
            reports.append(report)
        self.reports.extend(reports)
        if self._sink is not None:
            for report in reports:
                self._sink(report)
        return reports


# --------------------------------------------------------------------------- #
# Transports
# --------------------------------------------------------------------------- #


async def serve_tcp(
    pipeline: IngestPipeline,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    one_shot: bool = False,
    on_listening: Optional[Callable[[int], None]] = None,
    handle_signals: bool = False,
    idle_timeout_s: Optional[float] = 60.0,
) -> bool:
    """Accept event lines over TCP until cancelled (or, if ``one_shot``,
    until the first client disconnects — the mode tests and demos use).

    ``on_listening`` receives the bound port once the socket is ready,
    which is how callers using ``port=0`` (an ephemeral port) learn where
    to connect.  On shutdown the pipeline is flushed, so a final partial
    window is still reported.

    With ``handle_signals``, SIGINT/SIGTERM are caught on the event loop
    and trigger the same clean shutdown path (flush, then return) instead
    of unwinding the loop with a traceback; the return value is True when
    a signal (rather than a disconnect or cancellation) ended the serve.

    ``idle_timeout_s`` bounds how long one connection may sit silent: a
    half-open client (crashed producer, dropped NAT mapping) is
    disconnected after that long instead of holding its reader task — and,
    in ``one_shot`` mode, the whole service — forever.  Disconnects are
    counted in ``pipeline.idle_disconnects``; ``None`` disables the bound.
    """
    done = asyncio.Event()
    signalled: List[int] = []

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    if idle_timeout_s is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=idle_timeout_s
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    # Half-open peer: drop it cleanly rather than keeping
                    # its reader task alive forever.
                    pipeline.idle_disconnects += 1
                    break
                except ValueError:
                    # Line exceeded even the reader's buffer limit; the
                    # reader drops the chunk and stays usable.
                    pipeline.malformed_lines += 1
                    continue
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    pipeline.malformed_lines += 1
                    continue
                for report in pipeline.feed_line(line.decode("utf-8", "replace")):
                    writer.write((report.summary_line() + "\n").encode())
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # the peer is gone; the close already succeeded locally
            if one_shot:
                done.set()

    # The reader limit sits above MAX_LINE_BYTES so a barely-oversized line
    # is read whole and rejected by the explicit length gate (counted once),
    # rather than tripping the stream reader's buffer-limit ValueError.
    loop = asyncio.get_running_loop()
    installed: List[int] = []
    if handle_signals:
        def _on_signal(signum: int) -> None:
            signalled.append(signum)
            done.set()

        # Installed before the socket binds, so by the time a caller's
        # on_listening fires (their readiness marker) signals already take
        # the clean path.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _on_signal, signum)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix loop or non-main thread: default delivery
    server = await asyncio.start_server(handle, host, port, limit=4 * MAX_LINE_BYTES)
    try:
        bound_port = server.sockets[0].getsockname()[1]
        if on_listening is not None:
            on_listening(bound_port)
        # Without one_shot or a signal the event is never set: serve until
        # cancelled, exactly the pre-signal-handling behaviour.
        await done.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        pipeline.finish()
    return bool(signalled)


def run_stdin(pipeline: IngestPipeline) -> List[TwinWindowReport]:
    """Blocking front end: read event lines from stdin until EOF, flush."""
    pipeline.feed_lines(sys.stdin)
    pipeline.finish()
    return pipeline.reports
