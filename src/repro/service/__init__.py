"""Digital-twin serving service: streaming windowed re-simulation.

Everything else in the repository answers capacity questions in batch — a
driver generates a trace, runs the simulator, prints a figure.  This package
turns the same simulator into a *digital twin* of a live fleet:

* :mod:`repro.service.ingest` accepts live query events (a TCP line
  protocol, stdin, or an in-process replay — the broker is deliberately
  trivial);
* :mod:`repro.service.windows` aggregates events into fixed event-time
  windows with a configurable watermark/lateness policy;
* :mod:`repro.service.twin` re-simulates each closed window *cumulatively*
  through the :class:`~repro.serving.cluster.ClusterSimulator` fast path and
  predicts fleet capacity via the memoised
  :class:`~repro.runtime.capacity.CapacitySearch`;
* :mod:`repro.service.shadow` maintains an operator-supplied "what-if" fleet
  configuration side by side with the real one, so a config change is
  evaluated in shadow mode — against live traffic — before rollout.

``python -m repro.service`` is the long-running entry point; see
``docs/architecture.md`` for how the service layer sits on the rest of the
stack.
"""

from repro.service.ingest import IngestPipeline, parse_event
from repro.service.shadow import (
    ConfigVerdict,
    FleetSpec,
    ShadowVerdict,
    compare_verdicts,
    load_fleet_spec,
)
from repro.service.twin import DigitalTwin, TwinWindowReport
from repro.service.windows import Window, WindowManager, WindowRollup

__all__ = [
    "ConfigVerdict",
    "DigitalTwin",
    "FleetSpec",
    "IngestPipeline",
    "ShadowVerdict",
    "TwinWindowReport",
    "Window",
    "WindowManager",
    "WindowRollup",
    "compare_verdicts",
    "load_fleet_spec",
    "parse_event",
]
