"""Shadow-mode fleet configurations and real-vs-what-if verdicts.

The digital twin runs **two** fleet configurations against the same live
stream: the *real* config (what the fleet actually runs) and an
operator-supplied *what-if* config (what the operator is considering rolling
out).  This module holds the pieces that make that comparison concrete:

* :class:`FleetSpec` — a declarative, JSON-serialisable description of a
  homogeneous fleet (model, platform, size, scheduling knobs, balancing
  policy) that the service can build simulators and capacity searches from.
  ``--what-if-config`` on the CLI is a JSON file in exactly this shape;
* :class:`ConfigVerdict` — one config's per-window outcome: measured p95
  against the SLA, stability, predicted capacity, and headroom;
* :func:`compare_verdicts` — the shadow-mode comparison itself, flagging
  *divergence*: the what-if config failing (or newly passing) the SLA while
  the real config does the opposite, evaluated on identical traffic before
  any rollout.

>>> spec = FleetSpec(name="real", model="ncf", platform="broadwell",
...                  num_servers=2, batch_size=128, num_cores=4)
>>> FleetSpec.from_dict(spec.to_dict()) == spec
True
>>> green = ConfigVerdict(config="real", p95_latency_s=0.04, sla_latency_s=0.1,
...                       meets_sla=True, stable=True, capacity_qps=5000.0,
...                       offered_qps=1000.0, evaluations=6)
>>> red = ConfigVerdict(config="what-if", p95_latency_s=0.35, sla_latency_s=0.1,
...                     meets_sla=False, stable=False, capacity_qps=600.0,
...                     offered_qps=1000.0, evaluations=6)
>>> verdict = compare_verdicts(green, red)
>>> verdict.diverged
True
>>> print(verdict.describe())
DIVERGED: what-if violates the 100.0 ms SLA (p95 350.0 ms) while real is green
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.execution.engine import EnginePair, build_cpu_engine
from repro.serving.cluster import ClusterServer, available_balancers, homogeneous_fleet
from repro.serving.simulator import ServingConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FleetSpec:
    """Declarative description of one homogeneous fleet configuration.

    The twin holds one spec per side (real / what-if).  Specs are plain
    data: they round-trip through JSON (:meth:`to_dict` / :meth:`from_dict`),
    and :meth:`build_servers` materialises the actual
    :class:`~repro.serving.cluster.ClusterServer` fleet on demand.
    """

    name: str
    model: str
    num_servers: int
    batch_size: int
    platform: str = "skylake"
    num_cores: int = 0
    policy: str = "least-outstanding"

    def __post_init__(self) -> None:
        check_positive("num_servers", self.num_servers)
        check_positive("batch_size", self.batch_size)
        if self.num_cores < 0:
            raise ValueError(f"num_cores must be >= 0, got {self.num_cores}")
        if self.policy not in available_balancers():
            raise ValueError(
                f"unknown balancing policy {self.policy!r}; "
                f"available: {available_balancers()}"
            )

    def serving_config(self) -> ServingConfig:
        """The per-server scheduling configuration this spec describes."""
        return ServingConfig(batch_size=self.batch_size, num_cores=self.num_cores)

    def build_servers(self, engines: Optional[EnginePair] = None) -> List[ClusterServer]:
        """Materialise the fleet (building the CPU engine unless provided)."""
        if engines is None:
            engines = EnginePair(cpu=build_cpu_engine(self.model, self.platform), gpu=None)
        return homogeneous_fleet(engines, self.serving_config(), self.num_servers)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (the ``--what-if-config`` shape)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], name: str = "") -> "FleetSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        data = dict(payload)
        if name and "name" not in data:
            data["name"] = name
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fleet-spec keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)


def load_fleet_spec(path: Union[str, Path], name: str = "what-if") -> FleetSpec:
    """Load a :class:`FleetSpec` from a JSON file (the CLI's what-if config)."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"fleet spec {path} must be a JSON object")
    return FleetSpec.from_dict(payload, name=name)


# --------------------------------------------------------------------------- #
# Verdicts
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConfigVerdict:
    """One fleet config's outcome for one closed window.

    ``p95_latency_s`` and ``stable`` come from the cumulative re-simulation
    of the stream so far; ``capacity_qps`` from the (memoised) capacity
    search; ``offered_qps`` is the window's observed arrival rate.
    """

    config: str
    p95_latency_s: float
    sla_latency_s: float
    meets_sla: bool
    stable: bool
    capacity_qps: float
    offered_qps: float
    evaluations: int

    @property
    def green(self) -> bool:
        """SLA met and no instability — the config passes this window."""
        return self.meets_sla and self.stable

    @property
    def headroom(self) -> float:
        """Predicted capacity over the window's offered rate (0 if idle)."""
        if self.offered_qps <= 0:
            return 0.0
        return self.capacity_qps / self.offered_qps

    def status(self) -> str:
        """``"green"`` or ``"RED"`` — the one-glance SLA verdict."""
        return "green" if self.green else "RED"


@dataclass(frozen=True)
class ShadowVerdict:
    """The shadow-mode comparison of one window's real and what-if verdicts."""

    real: ConfigVerdict
    what_if: ConfigVerdict

    @property
    def diverged(self) -> bool:
        """True when exactly one side passes the window."""
        return self.real.green != self.what_if.green

    @property
    def p95_delta_s(self) -> float:
        """What-if p95 minus real p95 (positive: what-if is slower)."""
        return self.what_if.p95_latency_s - self.real.p95_latency_s

    @property
    def capacity_delta_qps(self) -> float:
        """What-if capacity minus real capacity (negative: capacity lost)."""
        return self.what_if.capacity_qps - self.real.capacity_qps

    def describe(self) -> str:
        """One-line human verdict for logs and reports."""
        sla_ms = self.real.sla_latency_s * 1e3
        if not self.diverged:
            state = "both green" if self.real.green else "both RED"
            return (
                f"aligned ({state}): p95 delta {self.p95_delta_s * 1e3:+.1f} ms, "
                f"capacity delta {self.capacity_delta_qps:+.0f} qps"
            )
        if self.real.green:
            return (
                f"DIVERGED: {self.what_if.config} violates the {sla_ms:.1f} ms SLA "
                f"(p95 {self.what_if.p95_latency_s * 1e3:.1f} ms) while "
                f"{self.real.config} is green"
            )
        return (
            f"DIVERGED: {self.what_if.config} meets the {sla_ms:.1f} ms SLA "
            f"while {self.real.config} is RED "
            f"(p95 {self.real.p95_latency_s * 1e3:.1f} ms)"
        )


def compare_verdicts(real: ConfigVerdict, what_if: ConfigVerdict) -> ShadowVerdict:
    """Compare one window's verdicts; see :class:`ShadowVerdict`."""
    return ShadowVerdict(real=real, what_if=what_if)
