"""The digital twin: cumulative windowed re-simulation of a live fleet.

:class:`DigitalTwin` is the service's core loop body.  Fed one closed
:class:`~repro.service.windows.Window` at a time, it

1. appends the window's events to the cumulative history (window 0 through
   the window just closed — the OpenDT ``sim-worker`` discipline, so every
   report describes the *whole stream so far*, not an isolated slice);
2. re-simulates the cumulative stream through the
   :class:`~repro.serving.cluster.ClusterSimulator` fast path, once per
   configured fleet (real, and the shadow what-if when present).  Because
   the simulator is a deterministic function of the event multiset, the
   final window's cumulative measurement is **bit-identical** to a one-shot
   batch run over the same events — asserted in
   ``tests/test_service_twin.py::TestCumulativeBitIdentity``;
3. predicts each fleet's capacity with the unified
   :class:`~repro.runtime.capacity.CapacitySearch` against a shared
   :class:`~repro.serving.capacity.CapacityCache`.  The search's inputs are
   window-independent, so the first window pays the cold bisection and every
   later window replays through the in-process memo at ~0 evaluations (one
   verifying evaluation when warm-starting from disk across restarts);
4. emits a :class:`TwinWindowReport` carrying both
   :class:`~repro.service.shadow.ConfigVerdict` s and the shadow-mode
   :class:`~repro.service.shadow.ShadowVerdict`.

Long-lived state (the worker pool, the capacity cache, the per-config
simulators, the offered-rate tracker) is built once and reused across
windows — the whole point of running as a service instead of a batch CLI.

>>> from repro.queries.generator import LoadGenerator
>>> from repro.service.shadow import FleetSpec
>>> from repro.service.windows import WindowManager
>>> twin = DigitalTwin(
...     real=FleetSpec(name="real", model="ncf", platform="broadwell",
...                    num_servers=2, batch_size=128, num_cores=4),
...     sla_latency_s=0.08,
...     load_generator=LoadGenerator(seed=11),
...     search_num_queries=80, search_iterations=3, search_max_queries=200,
... )
>>> manager = WindowManager(window_s=5.0)
>>> stream = LoadGenerator(seed=11).with_rate(60.0).generate(400)
>>> windows = manager.extend(stream) + manager.flush()
>>> reports = [twin.observe(window) for window in windows]
>>> first, last = reports[0], reports[-1]
>>> first.real.evaluations > 0      # cold capacity search on window 0
True
>>> last.real.evaluations           # later windows replay from the memo
0
>>> last.cumulative_queries == len(stream)
True
>>> twin.close()
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.execution.engine import EnginePair, build_cpu_engine
from repro.experiments.result import ExperimentResult
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.runtime.capacity import CapacitySearch, run_capacity_searches
from repro.runtime.pool import WorkerPool
from repro.serving.capacity import CapacityCache
from repro.serving.cluster import ClusterSimulationResult, ClusterSimulator
from repro.serving.simulator import _check_latency_stats
from repro.service.shadow import (
    ConfigVerdict,
    FleetSpec,
    ShadowVerdict,
    compare_verdicts,
)
from repro.service.windows import Window, WindowRollup
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TwinWindowReport:
    """Everything the twin publishes when one window closes."""

    window: Window
    cumulative_queries: int
    real: ConfigVerdict
    what_if: Optional[ConfigVerdict]
    shadow: Optional[ShadowVerdict]
    #: Median offered rate across all closed windows so far (long-lived
    #: tracker state — the service-side load trend).
    median_window_rate_qps: float

    def to_experiment_result(self) -> ExperimentResult:
        """The window's verdicts as an :class:`ExperimentResult`.

        Shaped like every batch driver's output so the existing reporting
        stack (``render_report``, the sweep cache, the benchmark harness)
        consumes twin windows unchanged.
        """
        result = ExperimentResult(
            experiment_id=f"digital-twin-w{self.window.index:04d}",
            title=(
                f"window {self.window.index} "
                f"[{self.window.start_s:.0f}s, {self.window.end_s:.0f}s) — "
                f"{len(self.window.queries)} events, "
                f"{self.cumulative_queries} cumulative"
            ),
            headers=[
                "config",
                "status",
                "p95-ms",
                "sla-ms",
                "capacity-qps",
                "offered-qps",
                "headroom",
                "evals",
            ],
        )
        for verdict in filter(None, (self.real, self.what_if)):
            result.add_row(
                verdict.config,
                verdict.status(),
                verdict.p95_latency_s * 1e3,
                verdict.sla_latency_s * 1e3,
                verdict.capacity_qps,
                verdict.offered_qps,
                verdict.headroom,
                verdict.evaluations,
            )
        if self.shadow is not None:
            result.notes = self.shadow.describe()
        result.metadata["window_index"] = self.window.index
        result.metadata["median_window_rate_qps"] = self.median_window_rate_qps
        if self.shadow is not None:
            result.metadata["diverged"] = self.shadow.diverged
        return result

    def summary_line(self) -> str:
        """Compact one-window log line for the streaming service output."""
        parts = [
            f"w{self.window.index:04d}",
            f"events={len(self.window.queries)}",
            f"cum={self.cumulative_queries}",
            f"real={self.real.status()}"
            f"(p95={self.real.p95_latency_s * 1e3:.1f}ms,"
            f" cap={self.real.capacity_qps:.0f}qps,"
            f" evals={self.real.evaluations})",
        ]
        if self.what_if is not None:
            parts.append(
                f"what-if={self.what_if.status()}"
                f"(p95={self.what_if.p95_latency_s * 1e3:.1f}ms,"
                f" cap={self.what_if.capacity_qps:.0f}qps)"
            )
        if self.shadow is not None and self.shadow.diverged:
            parts.append("DIVERGED")
        return "  ".join(parts)


class _FleetState:
    """One configured fleet's long-lived twin state (built once, reused)."""

    def __init__(self, spec: FleetSpec, latency_stats: str = "exact") -> None:
        self.spec = spec
        self.engines = EnginePair(
            cpu=build_cpu_engine(spec.model, spec.platform), gpu=None
        )
        self.servers = spec.build_servers(self.engines)
        # One simulator per config for the service's lifetime: kernels are
        # rebuilt per run() and seeded balancers reset, so repeated runs are
        # deterministic functions of the event multiset.
        self.simulator = ClusterSimulator(
            self.servers, balancer=spec.policy, latency_stats=latency_stats
        )


class DigitalTwin:
    """Re-simulates a live stream window by window, real vs what-if.

    Parameters
    ----------
    real:
        The fleet configuration actually serving traffic.
    sla_latency_s:
        The p95 target both configs are held to.
    load_generator:
        Workload template for the capacity searches (arrival process shape,
        query-size distribution, seed).  Window re-simulation uses the
        *observed* events; only the capacity prediction needs a generator.
    what_if:
        Optional shadow configuration evaluated side by side.
    jobs / pool:
        Worker budget (and optionally an explicit long-lived
        :class:`~repro.runtime.pool.WorkerPool`) for the capacity searches.
    capacity_cache_dir:
        Warm-start cache directory.  Defaults to a private temporary
        directory owned (and cleaned up) by the twin; point it somewhere
        persistent to warm-start across service restarts.
    search_num_queries / search_iterations / search_max_queries:
        Fidelity knobs forwarded to :class:`CapacitySearch.for_fleet`.
    latency_stats:
        ``"exact"`` (default) buffers every latency sample, keeping the
        twin's reports bit-identical to earlier releases; ``"sketch"``
        threads the fixed-space quantile sketch through the fleet
        simulators, the capacity searches, and the cross-window rollups, so
        the twin's footprint stays O(1) in the events observed — the
        million-query streaming configuration (see ``docs/performance.md``).
    """

    def __init__(
        self,
        real: FleetSpec,
        sla_latency_s: float,
        load_generator: LoadGenerator,
        what_if: Optional[FleetSpec] = None,
        *,
        jobs: int = 1,
        pool: Optional[WorkerPool] = None,
        capacity_cache_dir: Union[str, Path, None] = None,
        search_num_queries: int = 400,
        search_iterations: int = 6,
        search_max_queries: int = 4000,
        latency_stats: str = "exact",
    ) -> None:
        check_positive("sla_latency_s", sla_latency_s)
        if what_if is not None and what_if.name == real.name:
            raise ValueError(
                f"real and what-if specs must have distinct names, "
                f"both are {real.name!r}"
            )
        self._sla_latency_s = sla_latency_s
        self._load_generator = load_generator
        self._jobs = jobs
        self._pool = pool
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if capacity_cache_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="twin-capacity-")
            capacity_cache_dir = self._tempdir.name
        self._capacity_cache = CapacityCache(capacity_cache_dir)
        self._latency_stats = _check_latency_stats(latency_stats)
        self._search_fidelity = {
            "num_queries": search_num_queries,
            "iterations": search_iterations,
            "max_queries": search_max_queries,
        }
        self._fleets = [_FleetState(real, self._latency_stats)]
        if what_if is not None:
            self._fleets.append(_FleetState(what_if, self._latency_stats))
        self._history: List[Query] = []
        self._windows_observed = 0
        # Long-lived across windows: the offered-rate tracker is queried
        # (median) and then recorded into again on every window — the
        # record-after-percentile pattern tests/test_utils_stats.py pins.
        # In sketch mode it and the size rollup merge fixed-space sketches
        # per window instead of concatenating samples.
        self._window_rates = PercentileTracker(mode=self._latency_stats)
        self._size_rollup = WindowRollup(self._latency_stats)

    # ------------------------------------------------------------------ #

    @property
    def sla_latency_s(self) -> float:
        """The p95 target the twin holds both configs to."""
        return self._sla_latency_s

    @property
    def capacity_cache(self) -> CapacityCache:
        """The twin's shared warm-start cache (its ``stats`` show the tiers)."""
        return self._capacity_cache

    @property
    def windows_observed(self) -> int:
        """Number of windows re-simulated so far."""
        return self._windows_observed

    @property
    def cumulative_queries(self) -> int:
        """Events accumulated across all observed windows."""
        return len(self._history)

    @property
    def latency_stats(self) -> str:
        """``"exact"`` or ``"sketch"`` — the configured statistics tier."""
        return self._latency_stats

    @property
    def size_rollup(self) -> WindowRollup:
        """Cross-window query-size distribution (sketch-merged in sketch mode)."""
        return self._size_rollup

    def specs(self) -> List[FleetSpec]:
        """The configured fleet specs (real first, then the what-if)."""
        return [state.spec for state in self._fleets]

    # ------------------------------------------------------------------ #

    def observe(self, window: Window) -> TwinWindowReport:
        """Ingest one closed window: re-simulate cumulatively, re-predict.

        Must be called in window order (the
        :class:`~repro.service.windows.WindowManager` emits windows that
        way); the cumulative history simply concatenates each window's
        events, and the simulators sort by arrival time themselves.
        """
        if not window.queries:
            raise ValueError(f"window {window.index} is empty; nothing to simulate")
        self._history.extend(window.queries)
        self._windows_observed += 1
        offered_qps = window.mean_rate_qps
        self._window_rates.add(offered_qps)
        self._size_rollup.fold([float(q.size) for q in window.queries])

        capacities = self._predict_capacities()
        verdicts: List[ConfigVerdict] = []
        for state, capacity in zip(self._fleets, capacities):
            measured = self._resimulate(state)
            verdicts.append(
                ConfigVerdict(
                    config=state.spec.name,
                    p95_latency_s=measured.p95_latency_s,
                    sla_latency_s=self._sla_latency_s,
                    meets_sla=measured.meets_sla(self._sla_latency_s),
                    stable=measured.is_stable(self._sla_latency_s),
                    capacity_qps=capacity.max_qps,
                    offered_qps=offered_qps,
                    evaluations=capacity.evaluations,
                )
            )

        real = verdicts[0]
        what_if = verdicts[1] if len(verdicts) > 1 else None
        shadow = compare_verdicts(real, what_if) if what_if is not None else None
        return TwinWindowReport(
            window=window,
            cumulative_queries=len(self._history),
            real=real,
            what_if=what_if,
            shadow=shadow,
            median_window_rate_qps=self._window_rates.p50(),
        )

    def absorb(self, window: Window) -> None:
        """Fold one closed window into the history without re-simulating.

        The cheap sibling of :meth:`observe`: the window's events join the
        cumulative history (and the rate tracker sees its offered rate),
        but no simulation or capacity prediction runs and no report is
        emitted.  Because every later :meth:`observe` re-simulates the
        *whole* history, absorbing conserves bit-identity of all subsequent
        cumulative measurements — which is what makes it safe for both
        checkpoint resume (:meth:`restore`) and load shedding.
        """
        if not window.queries:
            raise ValueError(f"window {window.index} is empty; nothing to absorb")
        self._history.extend(window.queries)
        self._windows_observed += 1
        self._window_rates.add(window.mean_rate_qps)
        self._size_rollup.fold([float(q.size) for q in window.queries])

    def restore(self, windows: List[Window]) -> None:
        """Adopt a journalled window sequence (crash recovery, in order)."""
        for window in windows:
            self.absorb(window)

    def last_cumulative_result(self, config: Optional[str] = None) -> ClusterSimulationResult:
        """Re-run the cumulative simulation for one config (default: real).

        A deterministic replay of what the most recent :meth:`observe`
        measured — the bit-identity tests compare this against a one-shot
        batch run over the same events.
        """
        if not self._history:
            raise ValueError("no windows observed yet")
        return self._resimulate(self._state(config))

    def close(self) -> None:
        """Release twin-owned resources (the private cache directory)."""
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "DigitalTwin":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _state(self, config: Optional[str]) -> _FleetState:
        if config is None:
            return self._fleets[0]
        for state in self._fleets:
            if state.spec.name == config:
                return state
        raise KeyError(
            f"unknown config {config!r}; have {[s.spec.name for s in self._fleets]}"
        )

    def _resimulate(self, state: _FleetState) -> ClusterSimulationResult:
        """One cumulative pass over the history for one fleet config."""
        return state.simulator.run(self._history)

    def _predict_capacities(self):
        """Both fleets' capacity at the SLA, via the shared memoised search.

        The searches' inputs are window-independent (fleet, SLA, workload
        template), so window 0 runs them cold and every later window hits
        the cache's in-process memo — ``evaluations == 0`` — keeping the
        per-window cost at the cumulative re-simulation alone.
        """
        searches = [
            CapacitySearch.for_fleet(
                state.servers,
                state.spec.policy,
                self._sla_latency_s,
                self._load_generator,
                latency_stats=self._latency_stats,
                **self._search_fidelity,
            )
            for state in self._fleets
        ]
        # Both configs' searches drain one shared pool concurrently (the
        # cross-search driver), exactly like a batch sweep would.
        return run_capacity_searches(
            searches,
            jobs=self._jobs,
            warm_start_cache=self._capacity_cache,
            pool=self._pool,
        )


# --------------------------------------------------------------------------- #


def render_window_reports(reports: List[TwinWindowReport]) -> str:
    """Render a batch of window reports as the experiments report format."""
    from repro.experiments.runner import render_report

    return render_report([report.to_experiment_result() for report in reports])
