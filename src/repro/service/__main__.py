"""Command-line entry point for the digital-twin serving service.

Usage::

    # serve a TCP line protocol on :9900, shadowing a what-if config
    python -m repro.service --port 9900 --window-s 60 \\
        --what-if-config what_if.json

    # read events from stdin (e.g. piped from a trace file)
    python -m repro.service --stdin --window-s 30

    # replay a recorded QueryTrace as if it were live, then exit
    python -m repro.service --replay trace.jsonl --window-s 30

Events are newline-delimited JSON objects (``{"query_id": ..,
"arrival_time": .., "size": ..}``) or ``id,time,size`` CSV — see
:mod:`repro.service.ingest`.  Each closed window prints one summary line
(and, with ``--report``, the full per-window table).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from repro.queries.generator import LoadGenerator
from repro.queries.trace import QueryTrace
from repro.runtime.pool import shared_pool
from repro.serving.cluster import available_balancers
from repro.service.checkpoint import WindowJournal
from repro.service.ingest import IngestPipeline, serve_tcp
from repro.service.shadow import FleetSpec, load_fleet_spec
from repro.service.twin import DigitalTwin, TwinWindowReport
from repro.service.windows import WindowManager


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the service CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Digital-twin serving service: stream query events, re-simulate "
            "each event-time window cumulatively, and publish capacity / "
            "p95-vs-SLA verdicts for the real fleet config and an optional "
            "shadow what-if config."
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--port",
        type=int,
        default=0,
        help="Listen for event lines on this TCP port (0 disables TCP).",
    )
    source.add_argument(
        "--stdin",
        action="store_true",
        help="Read event lines from stdin until EOF.",
    )
    source.add_argument(
        "--replay",
        default="",
        help="Replay a recorded QueryTrace file as a live stream, then exit.",
    )
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=60.0,
        help=(
            "Disconnect a TCP client after this many seconds of silence "
            "(0 disables the bound)."
        ),
    )
    parser.add_argument(
        "--window-s",
        type=float,
        default=60.0,
        help="Event-time window duration in seconds.",
    )
    parser.add_argument(
        "--lateness-s",
        type=float,
        default=0.0,
        help="Watermark lag: how much event-time disorder to tolerate.",
    )
    parser.add_argument(
        "--what-if-config",
        default="",
        help="JSON FleetSpec evaluated in shadow mode alongside the real fleet.",
    )
    parser.add_argument("--model", default="dlrm-rmc1", help="Zoo model to serve.")
    parser.add_argument("--platform", default="skylake", help="CPU platform name.")
    parser.add_argument(
        "--servers", type=int, default=2, help="Real fleet size (homogeneous)."
    )
    parser.add_argument(
        "--batch-size", type=int, default=256, help="Per-server CPU batch size."
    )
    parser.add_argument(
        "--num-cores", type=int, default=0, help="Cores per server (0 = all)."
    )
    parser.add_argument(
        "--policy",
        default="least-outstanding",
        choices=available_balancers(),
        help="Real fleet's balancing policy.",
    )
    parser.add_argument(
        "--sla-ms", type=float, default=100.0, help="p95 SLA target, milliseconds."
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="Worker processes for the per-window capacity searches.",
    )
    parser.add_argument(
        "--capacity-cache-dir",
        default="",
        help="Persistent warm-start cache (default: private temp directory).",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default="",
        help=(
            "Journal every observed window here and resume from the journal "
            "on restart without reprocessing (crash-safe; default: off)."
        ),
    )
    parser.add_argument(
        "--shed-above",
        type=int,
        default=0,
        help=(
            "Load shedding: when one ingest batch closes more than this many "
            "windows, absorb the oldest beyond the budget instead of "
            "re-simulating them (0 disables shedding)."
        ),
    )
    parser.add_argument(
        "--latency-stats",
        default="exact",
        choices=("exact", "sketch"),
        help=(
            "Statistics tier: 'exact' buffers every latency sample "
            "(bit-identical reports, the default); 'sketch' streams into "
            "fixed-space quantile sketches so memory stays O(1) in events "
            "observed (million-query streams; see docs/performance.md)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="Capacity-search workload seed."
    )
    parser.add_argument(
        "--one-shot",
        action="store_true",
        help="With --port: exit after the first client disconnects.",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="Print the full per-window verdict table, not just summary lines.",
    )
    return parser


def build_pipeline(args: argparse.Namespace, sink=None) -> IngestPipeline:
    """Wire the window manager and twin the parsed arguments describe."""
    real = FleetSpec(
        name="real",
        model=args.model,
        platform=args.platform,
        num_servers=args.servers,
        batch_size=args.batch_size,
        num_cores=args.num_cores,
        policy=args.policy,
    )
    what_if: Optional[FleetSpec] = None
    if args.what_if_config:
        what_if = load_fleet_spec(args.what_if_config)
    twin = DigitalTwin(
        real=real,
        sla_latency_s=args.sla_ms / 1e3,
        load_generator=LoadGenerator(seed=args.seed),
        what_if=what_if,
        jobs=args.jobs,
        capacity_cache_dir=args.capacity_cache_dir or None,
        latency_stats=getattr(args, "latency_stats", "exact"),
    )
    windows = WindowManager(args.window_s, allowed_lateness_s=args.lateness_s)
    journal: Optional[WindowJournal] = None
    if getattr(args, "checkpoint_dir", ""):
        journal = WindowJournal(args.checkpoint_dir)
        restored = journal.load()
        if restored:
            # Resume: adopt the journalled history (no re-simulation) and
            # seal the stream position so replayed events read as late.
            twin.restore(restored)
            windows.fast_forward(
                max(window.index for window in restored),
                max(
                    query.arrival_time
                    for window in restored
                    for query in window.queries
                ),
            )
    return IngestPipeline(
        windows,
        twin,
        sink=sink,
        journal=journal,
        shed_above=getattr(args, "shed_above", 0),
    )


def _print_report(report: TwinWindowReport, full: bool) -> None:
    if full:
        print(report.to_experiment_result().to_table())
    else:
        print(report.summary_line())


def _raise_keyboard_interrupt(signum, frame) -> None:
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    """Run the service with the requested transport until the stream ends.

    SIGINT and SIGTERM both shut the service down *cleanly*: open windows
    are flushed (so the final partial window is still reported), the usual
    end-of-run summaries print, and the exit status is 130 — never an
    asyncio traceback.
    """
    args = build_parser().parse_args(argv)
    if args.window_s <= 0:
        print(f"--window-s must be > 0, got {args.window_s}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.shed_above < 0:
        print(f"--shed-above must be >= 0, got {args.shed_above}", file=sys.stderr)
        return 2
    if args.idle_timeout_s < 0:
        print(
            f"--idle-timeout-s must be >= 0, got {args.idle_timeout_s}",
            file=sys.stderr,
        )
        return 2
    if not (args.port or args.stdin or args.replay):
        print(
            "pick an event source: --port N, --stdin, or --replay FILE",
            file=sys.stderr,
        )
        return 2

    def sink(report: TwinWindowReport) -> None:
        _print_report(report, args.report)

    # SIGTERM behaves like Ctrl-C on the blocking (replay / stdin) paths;
    # the TCP path installs its own loop-level handlers in serve_tcp.
    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:
        pass  # not the main thread (embedded use): keep default delivery

    interrupted = False
    try:
        # One pool for the service's whole lifetime: every window's capacity
        # searches (both configs) reuse the same long-lived workers.
        with shared_pool(args.jobs):
            pipeline = build_pipeline(args, sink=sink)
            if args.checkpoint_dir and pipeline.twin.windows_observed:
                print(
                    f"resumed from checkpoint: "
                    f"{pipeline.twin.windows_observed} windows, "
                    f"{pipeline.twin.cumulative_queries} events",
                    file=sys.stderr,
                )
            with pipeline.twin:
                if args.replay:
                    try:
                        trace = QueryTrace.load(args.replay)
                        for query in trace:
                            pipeline.feed(query)
                    except KeyboardInterrupt:
                        interrupted = True
                    pipeline.finish()
                elif args.stdin:
                    try:
                        pipeline.feed_lines(sys.stdin)
                    except KeyboardInterrupt:
                        interrupted = True
                    pipeline.finish()
                else:
                    def announce(bound_port: int) -> None:
                        # Printed only once the loop's signal handlers are
                        # live: a supervisor seeing this line may signal
                        # immediately and still get the clean path.
                        print(f"listening on port {bound_port}", file=sys.stderr)

                    try:
                        interrupted = asyncio.run(
                            serve_tcp(
                                pipeline,
                                port=args.port,
                                one_shot=args.one_shot,
                                on_listening=announce,
                                handle_signals=True,
                                idle_timeout_s=args.idle_timeout_s or None,
                            )
                        )
                    except KeyboardInterrupt:
                        interrupted = True  # loop handlers unavailable
                late = pipeline.windows.late_events
                if late or pipeline.malformed_lines:
                    print(
                        f"dropped: {late} late events, "
                        f"{pipeline.malformed_lines} malformed lines",
                        file=sys.stderr,
                    )
                if pipeline.shed_windows:
                    print(
                        f"load shedding: absorbed {pipeline.shed_windows} "
                        f"backlogged windows without re-simulating",
                        file=sys.stderr,
                    )
                diverged = sum(
                    1
                    for report in pipeline.reports
                    if report.shadow is not None and report.shadow.diverged
                )
                if pipeline.reports and pipeline.reports[-1].shadow is not None:
                    print(
                        f"shadow mode: {diverged}/{len(pipeline.reports)} "
                        f"windows diverged; last verdict: "
                        f"{pipeline.reports[-1].shadow.describe()}"
                    )
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)
    if interrupted:
        print("interrupted: flushed final window report", file=sys.stderr)
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
