"""Event-time windowing for the digital-twin service.

Live query events arrive in roughly — but not exactly — timestamp order.
:class:`WindowManager` assigns each event to a fixed-duration window keyed on
its **event time** (the query's ``arrival_time``, not the wall-clock instant
the service happened to read it), and closes windows behind a watermark:

* the watermark trails the largest event time seen by ``allowed_lateness_s``,
  so mildly out-of-order events still land in their correct window;
* a window closes once the watermark passes its end; events for a window
  that has already closed are *late* — they are counted and dropped rather
  than silently perturbing finished simulations;
* :meth:`WindowManager.flush` closes every remaining open window (end of
  stream, or service shutdown).

Windows are emitted in index order, and every accepted event appears in
exactly one emitted window — the conservation property the twin's cumulative
re-simulation relies on for bit-identity with a one-shot batch run.

>>> from repro.queries.query import Query
>>> manager = WindowManager(window_s=10.0)
>>> manager.add(Query(0, 3.0, 16))        # opens window [0, 10); nothing closes
[]
>>> closed = manager.add(Query(1, 12.5, 16))   # watermark passes 10.0
>>> [(w.index, w.start_s, w.end_s, len(w.queries)) for w in closed]
[(0, 0.0, 10.0, 1)]
>>> late = manager.add(Query(2, 1.0, 16))      # window 0 already closed
>>> (late, manager.late_events)
([], 1)
>>> [(w.index, len(w.queries)) for w in manager.flush()]
[(1, 1)]
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.queries.query import Query
from repro.utils.stats import PercentileTracker
from repro.utils.validation import check_non_negative, check_positive


class WindowRollup:
    """Cross-window sample rollup with mode-dependent merge semantics.

    Long-running services accumulate per-window sample distributions (query
    sizes, offered rates, window latencies) into a stream-lifetime summary.
    Each :meth:`fold` builds one per-window
    :class:`~repro.utils.stats.PercentileTracker` and merges it into the
    cumulative tracker: in the default ``"exact"`` mode the merge
    concatenates samples (bit-identical to one flat buffer, footprint grows
    with the stream); with ``latency_stats="sketch"`` the merge combines
    fixed-space quantile sketches instead, so the rollup's footprint stays
    O(1) in the number of events — the same knob the simulators take,
    threaded through the service layer.

    >>> rollup = WindowRollup()
    >>> rollup.fold([16.0, 32.0])
    >>> rollup.fold([64.0, 128.0])
    >>> (rollup.windows_folded, rollup.count, rollup.percentile(50))
    (2, 4, 48.0)
    """

    def __init__(self, latency_stats: str = "exact") -> None:
        self._cumulative = PercentileTracker(mode=latency_stats)
        self._windows = 0

    @property
    def latency_stats(self) -> str:
        """``"exact"`` or ``"sketch"`` — the configured merge semantics."""
        return self._cumulative.mode

    @property
    def windows_folded(self) -> int:
        """Number of windows merged so far."""
        return self._windows

    @property
    def count(self) -> int:
        """Total samples across all folded windows (exact in both modes)."""
        return self._cumulative.count

    def fold(self, samples: Union[Iterable[float], np.ndarray]) -> None:
        """Merge one window's samples into the cumulative rollup."""
        window = PercentileTracker(mode=self._cumulative.mode)
        window.extend(np.asarray(samples, dtype=np.float64))
        self._cumulative.merge(window)
        self._windows += 1

    def percentile(self, pct: float) -> float:
        """Cumulative ``pct``-th percentile (sketch-bounded in sketch mode)."""
        return self._cumulative.percentile(pct)

    def footprint(self) -> int:
        """Floats retained: all samples in exact mode, O(1) in sketch mode."""
        return self._cumulative.footprint()

    def __repr__(self) -> str:
        return (
            f"WindowRollup(latency_stats={self.latency_stats!r}, "
            f"windows={self._windows}, count={self.count}, "
            f"footprint={self.footprint()})"
        )


@dataclass(frozen=True)
class Window:
    """One closed event-time window and the queries that fell into it.

    ``queries`` preserves ingest order; consumers that need arrival order
    (the simulators) sort themselves, so a mildly out-of-order stream still
    re-simulates identically to its sorted batch equivalent.
    """

    index: int
    start_s: float
    end_s: float
    queries: Tuple[Query, ...]

    @property
    def duration_s(self) -> float:
        """Width of the window in seconds."""
        return self.end_s - self.start_s

    @property
    def mean_rate_qps(self) -> float:
        """Average offered rate over the window."""
        return len(self.queries) / self.duration_s


class WindowManager:
    """Aggregates an event stream into fixed windows keyed on event time.

    Parameters
    ----------
    window_s:
        Window duration in seconds.  Window ``i`` spans
        ``[start_s + i * window_s, start_s + (i + 1) * window_s)``.
    allowed_lateness_s:
        How far the watermark trails the largest event time seen.  ``0``
        closes a window the moment any event lands past its end (the
        strictest policy, right for in-order streams); a positive value
        tolerates that much event-time disorder without dropping events.
    start_s:
        Event time at which window 0 begins.
    """

    def __init__(
        self,
        window_s: float,
        allowed_lateness_s: float = 0.0,
        start_s: float = 0.0,
    ) -> None:
        check_positive("window_s", window_s)
        check_non_negative("allowed_lateness_s", allowed_lateness_s)
        self._window_s = float(window_s)
        self._lateness_s = float(allowed_lateness_s)
        self._start_s = float(start_s)
        self._open: Dict[int, List[Query]] = {}
        self._max_event_time = -math.inf
        self._closed_through = -1  # highest window index already emitted
        self._accepted = 0
        self._late = 0

    # ------------------------------------------------------------------ #

    @property
    def window_s(self) -> float:
        """Configured window duration."""
        return self._window_s

    @property
    def allowed_lateness_s(self) -> float:
        """Configured watermark lag."""
        return self._lateness_s

    @property
    def watermark_s(self) -> float:
        """Event time up to which the stream is considered complete."""
        return self._max_event_time - self._lateness_s

    @property
    def accepted_events(self) -> int:
        """Events assigned to a (current or future) window so far."""
        return self._accepted

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already closed."""
        return self._late

    @property
    def open_windows(self) -> List[int]:
        """Indices of windows holding events that have not closed yet."""
        return sorted(self._open)

    def window_index(self, event_time_s: float) -> int:
        """Index of the window an event at ``event_time_s`` belongs to."""
        if event_time_s < self._start_s:
            raise ValueError(
                f"event time {event_time_s} precedes the stream start "
                f"{self._start_s}"
            )
        return int((event_time_s - self._start_s) // self._window_s)

    def window_bounds(self, index: int) -> Tuple[float, float]:
        """``(start_s, end_s)`` of window ``index``."""
        start = self._start_s + index * self._window_s
        return start, start + self._window_s

    # ------------------------------------------------------------------ #

    def add(self, query: Query) -> List[Window]:
        """Ingest one event; return any windows this event just closed.

        Closed windows are returned in index order.  A late event (its
        window already emitted) is dropped and counted in
        :attr:`late_events`; the return value is then empty, since a late
        event can never advance the watermark past a still-open window.
        """
        index = self.window_index(query.arrival_time)
        if index <= self._closed_through:
            self._late += 1
            return []
        self._open.setdefault(index, []).append(query)
        self._accepted += 1
        if query.arrival_time > self._max_event_time:
            self._max_event_time = query.arrival_time
        return self._close_ripe()

    def extend(self, queries: Iterable[Query]) -> List[Window]:
        """Ingest many events; return every window they closed, in order."""
        closed: List[Window] = []
        for query in queries:
            closed.extend(self.add(query))
        return closed

    def flush(self) -> List[Window]:
        """Close every remaining open window (end of stream), in order."""
        closed = [self._emit(index) for index in sorted(self._open)]
        if closed:
            self._closed_through = max(self._closed_through, closed[-1].index)
        return closed

    def fast_forward(
        self, closed_through: int, max_event_time_s: float = -math.inf
    ) -> None:
        """Adopt a resumed stream position (checkpoint replay).

        Windows up to and including ``closed_through`` are sealed — events
        for them are late, exactly as if this manager had emitted them —
        and the watermark resumes from ``max_event_time_s`` (the largest
        event time the journalled stream had seen).  Only valid before any
        events have been ingested: fast-forwarding past open windows would
        drop accepted events.
        """
        if self._open:
            raise ValueError(
                f"cannot fast-forward past open windows {self.open_windows}"
            )
        self._closed_through = max(self._closed_through, int(closed_through))
        if max_event_time_s > self._max_event_time:
            self._max_event_time = float(max_event_time_s)

    # ------------------------------------------------------------------ #

    def _close_ripe(self) -> List[Window]:
        """Emit every open window whose end the watermark has passed."""
        watermark = self.watermark_s
        ripe = sorted(
            index
            for index in self._open
            if self.window_bounds(index)[1] <= watermark
        )
        closed = [self._emit(index) for index in ripe]
        if ripe:
            # Empty windows between emitted ones never materialise (no
            # events, nothing to simulate), but anything at or below the
            # highest emitted index is now sealed against late arrivals.
            self._closed_through = max(self._closed_through, ripe[-1])
        return closed

    def _emit(self, index: int) -> Window:
        start, end = self.window_bounds(index)
        return Window(
            index=index,
            start_s=start,
            end_s=end,
            queries=tuple(self._open.pop(index)),
        )

    def __repr__(self) -> str:
        return (
            f"WindowManager(window_s={self._window_s}, "
            f"lateness_s={self._lateness_s}, open={self.open_windows}, "
            f"accepted={self._accepted}, late={self._late})"
        )
