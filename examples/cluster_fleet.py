"""Fleet-scale serving walkthrough: cluster simulation and parallel sweeps.

Three stages build on the ``repro.serving.cluster`` subsystem:

1. serve one query stream across a heterogeneous fleet (CPU-only servers
   mixed with an accelerator-attached one) under each load-balancing policy
   and compare fleet tail latency and per-server load shares;
2. measure the fleet's QPS-at-SLA capacity per policy with the bisection
   capacity search;
3. regenerate a fig9-style batch-size sweep through the parallel experiment
   runner twice — the second pass is served entirely from the on-disk result
   cache — and report the measured wall-clock speedup.

Run with::

    python examples/cluster_fleet.py
"""

import tempfile

from repro.execution import build_engine_pair
from repro.experiments import SweepRunner
from repro.queries import LoadGenerator
from repro.serving import (
    ClusterServer,
    ClusterSimulator,
    ServingConfig,
    SLATier,
    find_cluster_max_qps,
    sla_target,
)
from repro.utils import format_table

MODEL = "dlrm-rmc1"
POLICIES = ("round-robin", "least-outstanding", "power-of-two")
CORES_PER_SERVER = 8
BATCH_SIZE = 256


def build_fleet():
    """Three CPU-only Skylake servers plus one with a GTX 1080 Ti attached."""
    cpu_engines = build_engine_pair(MODEL, "skylake", None)
    gpu_engines = build_engine_pair(MODEL, "skylake", "gtx1080ti")
    cpu_config = ServingConfig(batch_size=BATCH_SIZE, num_cores=CORES_PER_SERVER)
    gpu_config = ServingConfig(
        batch_size=BATCH_SIZE, num_cores=CORES_PER_SERVER, offload_threshold=512
    )
    servers = [
        ClusterServer(cpu_engines, cpu_config, f"cpu-{index}") for index in range(3)
    ]
    servers.append(ClusterServer(gpu_engines, gpu_config, "gpu-0"))
    return servers


def compare_policies(rate_qps: float = 8000.0, num_queries: int = 3000) -> None:
    """Serve one near-saturation stream under each policy and compare tails."""
    servers = build_fleet()
    queries = LoadGenerator(seed=42).with_rate(rate_qps).generate(num_queries)
    rows = []
    for policy in POLICIES:
        result = ClusterSimulator(servers, policy).run(queries)
        shares = "/".join(f"{s.query_share * 100:.0f}%" for s in result.per_server)
        rows.append(
            [
                policy,
                round(result.p95_latency_s * 1e3, 2),
                round(result.p99_latency_s * 1e3, 2),
                round(result.fleet_cpu_utilization * 100, 1),
                shares,
            ]
        )
    print(
        format_table(
            ["policy", "p95-ms", "p99-ms", "fleet-cpu-%", "per-server share"],
            rows,
            title=(
                f"Heterogeneous fleet (3x CPU + 1x GPU) at {rate_qps:.0f} QPS "
                f"offered ({MODEL})"
            ),
        )
    )


def fleet_capacity(num_queries: int = 300, iterations: int = 4) -> None:
    """QPS-at-SLA capacity of the fleet under each balancing policy."""
    servers = build_fleet()
    target = sla_target(MODEL, SLATier.MEDIUM)
    generator = LoadGenerator(seed=42)
    rows = []
    for policy in POLICIES:
        outcome = find_cluster_max_qps(
            servers,
            policy,
            target.latency_s,
            generator,
            num_queries=num_queries,
            iterations=iterations,
            max_queries=3000,
        )
        rows.append([policy, round(outcome.max_qps, 1)])
    print(
        format_table(
            ["policy", "max-qps"],
            rows,
            title=f"Fleet capacity at the {target.latency_ms:.0f} ms p95 SLA",
        )
    )


def parallel_sweep_demo(batch_sizes=(64, 256, 1024), processes=None) -> None:
    """Run a fig9-style sweep through the parallel runner, twice, with caching."""
    points = [
        {
            "models": ("dlrm-rmc1",),
            "tiers": (SLATier.MEDIUM,),
            "batch_sizes": (batch,),
            "num_queries": 200,
            "capacity_iterations": 3,
        }
        for batch in batch_sizes
    ]
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(processes=processes, cache_dir=cache_dir)
        cold = runner.run("figure-9", points)
        warm = runner.run("figure-9", points)

    rows = []
    for point, result in zip(points, cold.results):
        batch = point["batch_sizes"][0]
        rows.append([batch, result.column(f"qps@b{batch}")[0]])
    print(
        format_table(
            ["batch-size", "max-qps"],
            rows,
            title="fig9-style sweep points (computed by the parallel runner)",
        )
    )
    speedup = cold.elapsed_s / max(warm.elapsed_s, 1e-9)
    print(
        f"cold pass: {cold.elapsed_s:.2f}s on {cold.processes} worker(s), "
        f"{cold.cache_misses} point(s) computed\n"
        f"warm pass: {warm.elapsed_s:.2f}s, {warm.cache_hits}/{len(points)} "
        f"cache hits -> {speedup:.0f}x faster from cache reuse"
    )


def main() -> None:
    """Run the three fleet-scale stages end to end."""
    compare_policies()
    print()
    fleet_capacity()
    print()
    parallel_sweep_demo()


if __name__ == "__main__":
    main()
