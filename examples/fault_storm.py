"""Fault storm walkthrough: what failures cost, and what awareness buys back.

Three stages build on the ``repro.faults`` subsystem:

1. author an explicit fault storm — crash windows and a straggler episode
   laid out by hand over a three-server fleet's two-second trace;
2. replay the *same* query stream through that storm under three policies
   (naive balancing, retries alone, failure-aware balancing with retries
   and hedged duplicates) and compare failures, tails, and SLA violations;
3. show the determinism guarantee: a seeded plan is a pure function of its
   seed, and two faulted replays of it produce bit-identical measurements.

Run with::

    python examples/fault_storm.py
"""

from repro.execution import build_engine_pair
from repro.faults import (
    CrashWindow,
    FaultPlan,
    NodeFaultSchedule,
    RetryPolicy,
    StragglerEpisode,
)
from repro.queries import LoadGenerator
from repro.serving import (
    ClusterSimulator,
    ServingConfig,
    SLATier,
    homogeneous_fleet,
    sla_target,
)
from repro.utils import format_table

MODEL = "dlrm-rmc1"
NUM_SERVERS = 3
OFFERED_QPS = 3000.0
NUM_QUERIES = 6000

#: The three policies compared under the same storm:
#: (label, balancer, retry policy).
ARMS = (
    ("naive", "least-outstanding", RetryPolicy()),
    ("retries", "least-outstanding", RetryPolicy(max_retries=2)),
    (
        "failure-aware+hedge",
        "failure-aware",
        RetryPolicy(max_retries=2, hedge=True),
    ),
)


def build_fleet():
    """Three identical CPU-only Skylake servers."""
    engines = build_engine_pair(MODEL, "skylake", None)
    config = ServingConfig(batch_size=256, num_cores=8)
    return homogeneous_fleet(engines, config, NUM_SERVERS)


def author_storm() -> FaultPlan:
    """An explicit storm: two node crashes plus one straggler episode.

    Node 0 dies early and comes back; node 1 limps at 4x service times
    through the middle of the trace; node 2 dies late.  At no instant is
    more than one node down, so a health-aware balancer always has
    somewhere good to send traffic.
    """
    return FaultPlan(
        nodes={
            0: NodeFaultSchedule(crashes=(CrashWindow(0.2, 0.8),)),
            1: NodeFaultSchedule(
                stragglers=(StragglerEpisode(0.5, 1.5, slowdown=4.0),)
            ),
            2: NodeFaultSchedule(crashes=(CrashWindow(1.2, 1.7),)),
        }
    )


def storm_replay() -> None:
    """Replay one stream through the authored storm under each policy."""
    servers = build_fleet()
    plan = author_storm()
    target = sla_target(MODEL, SLATier.MEDIUM)
    queries = LoadGenerator(seed=11).with_rate(OFFERED_QPS).generate(NUM_QUERIES)
    rows = []
    for label, balancer, retry in ARMS:
        result = ClusterSimulator(
            servers, balancer=balancer, fault_plan=plan, retry_policy=retry
        ).run(queries)
        stats = result.fault_stats
        over_sla = sum(
            1 for latency in result.latencies_s if latency > target.latency_s
        )
        rows.append(
            [
                label,
                round(result.p95_latency_s * 1e3, 2),
                result.failed_queries,
                result.failed_queries + over_sla,
                stats.retries,
                stats.hedged_dispatches,
            ]
        )
    print(
        format_table(
            ["policy", "p95-ms", "failed", "violations", "retries", "hedges"],
            rows,
            title=(
                f"Fault storm over {NUM_SERVERS} servers at "
                f"{OFFERED_QPS:.0f} QPS offered ({MODEL}, "
                f"{target.latency_ms:.0f} ms p95 SLA)"
            ),
        )
    )
    print(
        "naive balancing blackholes traffic into crashed nodes; "
        "failure-aware balancing routes around them."
    )


def determinism_demo() -> None:
    """Seeded plans and faulted replays are pure functions of the seed."""
    servers = build_fleet()
    queries = LoadGenerator(seed=11).with_rate(OFFERED_QPS).generate(1500)
    horizon_s = queries[-1].arrival_time
    plans = [
        FaultPlan.generate(
            NUM_SERVERS,
            horizon_s,
            crash_rate_hz=0.8,
            mean_downtime_s=0.3,
            seed=23,
        )
        for _ in range(2)
    ]
    assert plans[0] == plans[1]
    runs = [
        ClusterSimulator(
            servers,
            balancer="failure-aware",
            fault_plan=plans[index],
            retry_policy=RetryPolicy(max_retries=2),
        ).run(queries)
        for index in range(2)
    ]
    assert runs[0].latencies_s == runs[1].latencies_s
    print(
        f"seed 23 -> {sum(len(s.crashes) for s in plans[0].nodes.values())} "
        f"crash windows, twice; two faulted replays agree on all "
        f"{len(runs[0].latencies_s)} latencies bit-identically"
    )


def main() -> None:
    """Run the fault-storm stages end to end."""
    storm_replay()
    print()
    determinism_demo()


if __name__ == "__main__":
    main()
