"""Digital-twin demo: replay a diurnal trace as a live stream, shadow a what-if.

Generates a diurnally-modulated query trace (the Fig. 13 workload shape),
feeds it event by event through the service's ingest pipeline — exactly as a
TCP producer would — and lets the twin re-simulate each closed event-time
window cumulatively for **two** fleet configurations side by side:

* **real** — a fleet provisioned for the traffic;
* **what-if** — an operator's hypothetical config (here: deliberately
  under-provisioned), evaluated in shadow mode against the same live stream.

What to look for in the output:

* one summary line per closed window: real stays green while the what-if
  config goes RED as its cumulative p95 blows through the SLA — the
  divergence an operator would want to see *before* rolling the config out;
* the capacity-search evaluation counts: the first window pays the cold
  bisection for each config, every later window replays from the in-process
  memo at 0 evaluations (the per-window cost is the re-simulation alone);
* the final shadow verdict and the capacity cache's tier counters.

Run with::

    PYTHONPATH=src python examples/digital_twin.py
"""

from repro.queries.generator import LoadGenerator
from repro.queries.trace import DiurnalPattern, generate_diurnal_trace
from repro.service.ingest import IngestPipeline
from repro.service.shadow import FleetSpec
from repro.service.twin import DigitalTwin
from repro.service.windows import WindowManager

SLA_S = 0.05

REAL = FleetSpec(
    name="real",
    model="ncf",
    platform="broadwell",
    num_servers=3,
    batch_size=128,
    num_cores=4,
    policy="least-outstanding",
)

#: The rollout candidate under evaluation: a third of the fleet on one core
#: per node — cheaper, and (as the twin shows) unable to hold the SLA.
WHAT_IF = FleetSpec(
    name="what-if",
    model="ncf",
    platform="broadwell",
    num_servers=1,
    batch_size=128,
    num_cores=2,
    policy="least-outstanding",
)


def build_pipeline(window_s: float = 4.0, seed: int = 17) -> IngestPipeline:
    """The service pipeline the demo streams into."""
    twin = DigitalTwin(
        real=REAL,
        sla_latency_s=SLA_S,
        load_generator=LoadGenerator(seed=seed),
        what_if=WHAT_IF,
        search_num_queries=100,
        search_iterations=4,
        search_max_queries=400,
    )
    return IngestPipeline(WindowManager(window_s=window_s), twin)


def replay(
    base_rate_qps: float = 700.0,
    duration_s: float = 20.0,
    window_s: float = 4.0,
    seed: int = 17,
) -> IngestPipeline:
    """Stream a diurnal trace through the twin; print per-window verdicts."""
    # A compressed "day": the diurnal period equals the replay duration, so
    # the stream sweeps through trough and peak traffic within the demo.
    trace = generate_diurnal_trace(
        base_rate_qps,
        duration_s,
        pattern=DiurnalPattern(amplitude=0.5, period_s=duration_s),
        seed=seed,
        time_step_s=window_s / 2,
    )
    pipeline = build_pipeline(window_s=window_s, seed=seed)
    print(
        f"replaying {len(trace)} events over {duration_s:.0f}s "
        f"({window_s:.0f}s windows), SLA p95 <= {SLA_S * 1e3:.0f} ms"
    )
    with pipeline.twin:
        for query in trace:  # the "live" stream: one event at a time
            for report in pipeline.feed(query):
                print(report.summary_line())
        for report in pipeline.finish():
            print(report.summary_line())

        diverged = sum(
            1 for r in pipeline.reports if r.shadow is not None and r.shadow.diverged
        )
        print(f"\nshadow mode: {diverged}/{len(pipeline.reports)} windows diverged")
        print(f"final verdict: {pipeline.reports[-1].shadow.describe()}")
        stats = pipeline.twin.capacity_cache.stats
        print(
            f"capacity cache: {stats['memo_hits']} memo replays, "
            f"{stats['stores']} cold searches stored"
        )
    return pipeline


if __name__ == "__main__":
    replay()
