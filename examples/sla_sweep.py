"""SLA sweep: how the tail-latency target shapes the optimal operating point.

Mirrors the study behind Fig. 9 / Fig. 12(a): for one recommendation model,
sweep the p95 tail-latency target and report the batch size DeepRecSched-CPU
chooses and the latency-bounded throughput it achieves, contrasted with the
static baseline.

Run with::

    python examples/sla_sweep.py [model]
"""

import sys

from repro import LoadGenerator, ServingConfig
from repro.core import BatchSizeTuner, StaticSchedulerPolicy
from repro.execution import build_engine_pair
from repro.serving import find_max_qps
from repro.utils import format_table


def sweep(model: str = "dlrm-rmc3") -> None:
    """Sweep latency targets for ``model`` on Skylake."""
    engines = build_engine_pair(model, "skylake", None)
    generator = LoadGenerator(seed=11)
    static_batch = StaticSchedulerPolicy().batch_size(engines.cpu.platform)

    published_ms = engines.cpu.model.config.sla_target_ms
    targets_ms = [published_ms * factor for factor in (0.5, 0.75, 1.0, 1.25, 1.5)]

    rows = []
    for target_ms in targets_ms:
        target_s = target_ms / 1e3
        tuner = BatchSizeTuner(
            engines, generator, num_queries=300, capacity_iterations=4
        )
        tuned = tuner.tune(target_s)
        baseline = find_max_qps(
            engines,
            ServingConfig(batch_size=static_batch),
            target_s,
            generator,
            num_queries=300,
            iterations=4,
        )
        speedup = tuned.best_qps / baseline.max_qps if baseline.max_qps else float("inf")
        rows.append(
            [
                round(target_ms, 1),
                static_batch,
                round(baseline.max_qps, 1),
                tuned.best_batch_size,
                round(tuned.best_qps, 1),
                round(speedup, 2),
            ]
        )

    print(
        format_table(
            [
                "sla-ms",
                "static-batch",
                "static-qps",
                "tuned-batch",
                "tuned-qps",
                "speedup",
            ],
            rows,
            title=f"DeepRecSched-CPU across tail-latency targets ({model}, Skylake)",
        )
    )


if __name__ == "__main__":
    sweep(sys.argv[1] if len(sys.argv) > 1 else "dlrm-rmc3")
