"""SLA sweep over a heterogeneous fleet with two-tier warm starts.

Sweeps a range of p95 latency targets over a platform-mixed, speed-spread
fleet and runs every capacity search twice — once cold, once against a warm
:class:`~repro.serving.capacity.CapacityCache` with the opt-in near-miss
bracket-hint tier — printing each search's evaluation count side by side.

What to look for in the output:

* within one pass, adjacent-SLA searches donate bracket hints to each
  other, so the hinted pass evaluates fewer rates (strictly fewer wherever
  a usable donor exists; a hint that cannot tighten the default bracket
  falls back to the cold search unchanged) while converging to the same
  capacity within the cold search's bracket tolerance;
* the cache's per-tier counters (exact replays vs bracket hints) summarise
  where the savings came from.

Every search is submitted with ``jobs=4`` under one invocation-wide shared
pool: on a multi-core host the completion-driven scheduler keeps up to four
speculative evaluations in flight per search, and the in-flight budget is
clamped by physical cores, so the run stays exact everywhere.

Run with::

    PYTHONPATH=src python examples/capacity_hints_sweep.py
"""

import tempfile

from repro.queries.generator import LoadGenerator
from repro.runtime.capacity import CapacitySearch
from repro.runtime.pool import shared_pool
from repro.serving.capacity import CapacityCache
from repro.serving.cluster import heterogeneous_fleet
from repro.serving.simulator import ServingConfig

JOBS = 4
SLA_TARGETS_S = (0.08, 0.10, 0.125)


def build_fleet():
    """A small heterogeneous fleet: CPU platform mix with a speed spread."""
    return heterogeneous_fleet(
        "dlrm-rmc1",
        ServingConfig(batch_size=256, num_cores=8),
        num_servers=3,
        platform_mix={"skylake": 0.6, "broadwell": 0.4},
        speed_spread=0.08,
        rng=11,
    )


def sweep(fleet, cache=None, bracket_hints=False):
    """One pass over the SLA targets; returns [(sla, result), ...]."""
    outcomes = []
    for sla_s in SLA_TARGETS_S:
        search = CapacitySearch.for_fleet(
            fleet,
            "weighted-least-outstanding",
            sla_s,
            LoadGenerator(seed=11),
            num_queries=150,
            iterations=4,
            max_queries=1500,
        )
        outcomes.append(
            (sla_s, search.run(jobs=JOBS, warm_start_cache=cache,
                               bracket_hints=bracket_hints))
        )
    return outcomes


def run_sweep():
    """Run the cold and hinted passes and print the comparison."""
    fleet = build_fleet()
    with shared_pool(JOBS), tempfile.TemporaryDirectory() as cache_dir:
        cold = sweep(fleet)
        cache = CapacityCache(cache_dir)
        hinted = sweep(fleet, cache=cache, bracket_hints=bracket_hints_on())
        print(f"{len(fleet)}-server heterogeneous fleet, jobs={JOBS}\n")
        print(f"{'sla (ms)':>9s} {'cold qps':>10s} {'evals':>6s} "
              f"{'hinted qps':>11s} {'evals':>6s} {'delta':>7s}")
        for (sla_s, cold_result), (_, hinted_result) in zip(cold, hinted):
            delta = abs(hinted_result.max_qps - cold_result.max_qps)
            relative = delta / cold_result.max_qps if cold_result.max_qps else 0.0
            print(f"{sla_s * 1e3:9.1f} {cold_result.max_qps:10.1f} "
                  f"{cold_result.evaluations:6d} {hinted_result.max_qps:11.1f} "
                  f"{hinted_result.evaluations:6d} {relative:6.1%}")
        stats = cache.stats
        print(f"\ncache tiers: {stats['exact_hits']} exact replays, "
              f"{stats['hint_hits']} bracket hints, "
              f"{stats['hint_misses']} hint misses (no donor yet, or a donor "
              f"that could not tighten the cold bracket)")


def bracket_hints_on():
    """Hints are the point of the example; a hook so tests can flip them."""
    return True


if __name__ == "__main__":
    run_sweep()
