"""Distributed sweep walkthrough: a worker fleet that survives a host kill.

The paper's production-scale capacity sweeps (figure 13's policy × fleet
grids) parallelise across searches, and every driver in this repository
funnels that parallelism through one surface — ``WorkerPool.submit``.
:class:`repro.runtime.remote.RemoteWorkerPool` swaps the forked pool for a
fleet of worker processes reached over TCP, with zero call-site changes.

This example demonstrates the fault-tolerance contract end to end, on one
machine using loopback workers:

1. run a small policy × fleet-size capacity sweep serially — the ground
   truth;
2. start two worker processes, drain the same sweep through a
   :class:`RemoteWorkerPool` — and SIGKILL one worker while it holds task
   leases, mid-sweep;
3. show that the surviving fleet reassigned the dead host's leases and the
   distributed results are **bit-identical** to the serial run.

Run with::

    python examples/distributed_sweep.py

Exits non-zero if any distributed result diverges from the serial run.
"""

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.execution import build_engine_pair
from repro.queries import LoadGenerator
from repro.runtime.capacity import CapacitySearch, run_capacity_searches
from repro.runtime.remote import RemoteWorkerPool
from repro.serving import ServingConfig, homogeneous_fleet
from repro.utils import format_table

MODEL = "dlrm-rmc1"
PLATFORM = "skylake"
SLA_LATENCY_S = 0.1
POLICIES = ("least-outstanding", "power-of-two")
FLEET_SIZES = (1, 2)


def spawn_worker(slots=2):
    """Start one loopback worker subprocess; return (process, port)."""
    repo_root = Path(__file__).resolve().parent.parent
    command = [
        sys.executable,
        "-m",
        "repro.runtime.remote",
        "worker",
        "--port",
        "0",
        "--slots",
        str(slots),
        "--once",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd=str(repo_root),
    )
    line = proc.stdout.readline()
    match = re.search(r"listening (\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"worker did not announce a port: {line!r}")
    return proc, int(match.group(1))


def build_searches(num_queries, iterations):
    """The sweep grid: every balancing policy crossed with every fleet size.

    Returns ``(label, search)`` pairs, one per grid point.
    """
    engines = build_engine_pair(MODEL, PLATFORM, None)
    config = ServingConfig(batch_size=256, num_cores=8)
    generator = LoadGenerator(seed=7)
    return [
        (
            f"{size} server(s) / {policy}",
            CapacitySearch.for_fleet(
                homogeneous_fleet(engines, config, size),
                policy,
                SLA_LATENCY_S,
                generator,
                num_queries=num_queries,
                iterations=iterations,
                max_queries=10 * num_queries,
            ),
        )
        for size in FLEET_SIZES
        for policy in POLICIES
    ]


def run_demo(num_queries=60, iterations=3):
    """Serial sweep, then the same sweep on a fleet that loses a host."""
    labelled = build_searches(num_queries, iterations)
    labels = [label for label, _search in labelled]
    searches = [search for _label, search in labelled]
    print(f"serial baseline: {len(searches)} capacity searches ...")
    serial = [search.run() for search in searches]

    print("starting two loopback workers (2 slots each) ...")
    fleet = [spawn_worker(slots=2), spawn_worker(slots=2)]
    pool = RemoteWorkerPool(
        [("127.0.0.1", port) for _proc, port in fleet],
        retry_backoff_s=0.01,
    )

    def assassin():
        # Wait until the sweep is flowing and a worker holds a task lease
        # right now, then SIGKILL it: a mid-task host failure.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with pool._lock:
                started = pool._stats["completed"] >= 1
                busy = [
                    link for link in pool._links if link.alive and link.inflight
                ]
            if started and busy:
                victim_port = busy[0].address[1]
                for proc, port in fleet:
                    if port == victim_port:
                        print(f"SIGKILL worker on port {port} (holds leases)")
                        proc.kill()
                        return
            time.sleep(0.005)

    killer = threading.Thread(target=assassin, daemon=True)
    try:
        killer.start()
        distributed = run_capacity_searches(searches, jobs=4, pool=pool)
        killer.join(timeout=30)
    finally:
        pool.close()
        for proc, _port in fleet:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()

    stats = pool.stats
    rows = []
    mismatches = 0
    for label, one, many in zip(labels, serial, distributed):
        identical = (
            many.max_qps == one.max_qps
            and many.result.latencies_s == one.result.latencies_s
        )
        mismatches += 0 if identical else 1
        rows.append(
            [
                label,
                f"{one.max_qps:.1f}",
                f"{many.max_qps:.1f}",
                "yes" if identical else "NO",
            ]
        )
    print()
    print(
        format_table(
            ["search", "serial qps", "distributed qps", "bit-identical"], rows
        )
    )
    print(
        f"\nfleet: {stats['remote_workers']} workers, "
        f"{stats['worker_failures']} failed mid-sweep, "
        f"{stats['lease_reassignments']} leases reassigned, "
        f"{stats['local_fallbacks']} local fallbacks, "
        f"{stats['completed']}/{stats['submitted']} tasks completed"
    )
    if mismatches:
        print(f"{mismatches} result(s) diverged from the serial run")
        return 1
    print(
        "every distributed result is bit-identical to the serial sweep, "
        "despite the mid-task host kill"
    )
    return 0


def main():
    return run_demo()


if __name__ == "__main__":
    raise SystemExit(main())
