"""Production fleet study: batch tuning on a heterogeneous cluster.

Mirrors the paper's production deployment experiment (Fig. 13): a fleet of
heterogeneous machines (a Skylake/Broadwell mix with per-node speed spread)
receives diurnally modulated traffic near its serving capacity; serving it
with the fixed production batch size is compared against the tuned batch
size, and the p95/p99 tail-latency reduction is reported.  The whole fleet
runs as one shared-heap cluster simulation, so the same trace is also
replayed under a load-aware balancing policy to show what a real balancer
buys on top of batch tuning.  Also demonstrates the Fig. 7 observation that
a handful of nodes tracks the fleet-wide latency distribution.

Run with::

    python examples/production_fleet.py
"""

from repro.core import StaticSchedulerPolicy
from repro.execution import build_engine_pair
from repro.infra import DatacenterCluster
from repro.queries import DiurnalPattern, ProductionQuerySizes
from repro.utils import format_table

MODEL = "dlrm-rmc1"
NUM_NODES = 2
CORES_PER_NODE = 16
TUNED_BATCH = 512
DURATION_S = 8.0


def main() -> None:
    """Run the fixed-vs-tuned fleet comparison and the subsampling check."""
    cluster = DatacenterCluster(
        MODEL, num_nodes=NUM_NODES, num_cores=CORES_PER_NODE, seed=3
    )
    pattern = DiurnalPattern(amplitude=0.4, period_s=DURATION_S)

    # Offer ~85% of the fixed configuration's estimated fleet capacity, so the
    # diurnal peak pushes the baseline past saturation (the production regime).
    reference = build_engine_pair(MODEL, "skylake", None)
    fixed_batch = StaticSchedulerPolicy().batch_size(
        reference.cpu.platform, num_cores=CORES_PER_NODE
    )
    base_rate = 0.85 * cluster.estimated_capacity_qps(
        fixed_batch, ProductionQuerySizes().mean()
    )

    replay = dict(
        base_rate_qps=base_rate, duration_s=DURATION_S, pattern=pattern, seed=3
    )
    rows = []
    tuned_by_policy = {}
    for policy in ("random", "least-outstanding"):
        fixed = cluster.run_diurnal(batch_size=fixed_batch, policy=policy, **replay)
        tuned = cluster.run_diurnal(batch_size=TUNED_BATCH, policy=policy, **replay)
        tuned_by_policy[policy] = tuned
        rows.append(
            [policy, "fixed", fixed_batch, round(fixed.p95_latency_s * 1e3, 2),
             round(fixed.p99_latency_s * 1e3, 2)]
        )
        rows.append(
            [policy, "tuned", TUNED_BATCH, round(tuned.p95_latency_s * 1e3, 2),
             round(tuned.p99_latency_s * 1e3, 2)]
        )
        if policy == "random":
            reductions = (
                fixed.p95_latency_s / tuned.p95_latency_s,
                fixed.p99_latency_s / tuned.p99_latency_s,
            )
    print(
        format_table(
            ["policy", "config", "batch", "p95-ms", "p99-ms"],
            rows,
            title=(
                f"Fleet tail latency at ~{base_rate:.0f} QPS offered "
                f"({MODEL}, {NUM_NODES} nodes x {CORES_PER_NODE} cores)"
            ),
        )
    )
    print(
        f"p95 reduction: {reductions[0]:.2f}x, "
        f"p99 reduction: {reductions[1]:.2f}x under random balancing "
        "(paper: 1.39x / 1.31x)"
    )
    assert tuned.scalar_fallbacks == 0  # the replay rides the dense fast path

    # The Fig. 7 observation is made under the paper's uniform assignment.
    subsample = [cluster.nodes[0].node_id]
    gap = tuned_by_policy["random"].subsample_gap(subsample)
    print(
        f"\nSubsampling check: 1 of {cluster.num_nodes} nodes tracks the fleet "
        f"latency distribution within {gap * 100:.1f}% (paper: ~10%)."
    )


if __name__ == "__main__":
    main()
