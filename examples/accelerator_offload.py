"""Accelerator offload study: which queries belong on the GPU?

Mirrors the study behind Fig. 10 / Fig. 14: with the CPU batch size fixed,
sweep the query-size threshold above which whole queries are offloaded to a
GTX-1080Ti-class accelerator, and report throughput, the share of work the
GPU absorbs, and power efficiency (QPS/Watt).

Run with::

    python examples/accelerator_offload.py [model]
"""

import sys

from repro import LoadGenerator, ServingConfig
from repro.execution import build_engine_pair
from repro.hardware import SystemPowerModel
from repro.serving import SLATier, find_max_qps, sla_target
from repro.utils import format_table


def study(model: str = "dlrm-rmc1", batch_size: int = 512) -> None:
    """Sweep offload thresholds for ``model`` at its medium SLA target."""
    engines = build_engine_pair(model, "skylake", "gtx1080ti")
    generator = LoadGenerator(seed=11)
    power_model = SystemPowerModel(engines.cpu.platform, engines.gpu.platform)
    target = sla_target(model, SLATier.MEDIUM)

    rows = []
    for threshold in (None, 1, 128, 256, 384, 512, 768):
        config = ServingConfig(batch_size=batch_size, offload_threshold=threshold)
        outcome = find_max_qps(
            engines, config, target.latency_s, generator,
            num_queries=300, iterations=4,
        )
        sim = outcome.result
        gpu_fraction = sim.gpu_work_fraction if sim else 0.0
        cpu_util = sim.cpu_utilization if sim else 0.0
        gpu_util = sim.gpu_utilization if sim else 0.0
        include_gpu = threshold is not None
        power = power_model.power(cpu_util, gpu_util if include_gpu else 0.0, outcome.max_qps)
        watts = power.total_watts if include_gpu else power.cpu_watts
        rows.append(
            [
                "cpu-only" if threshold is None else threshold,
                round(outcome.max_qps, 1),
                round(gpu_fraction, 3),
                round(watts, 1),
                round(outcome.max_qps / watts, 2) if watts else 0.0,
            ]
        )

    print(
        format_table(
            ["offload-threshold", "qps", "gpu-work-fraction", "watts", "qps-per-watt"],
            rows,
            title=(
                f"GPU offload threshold sweep ({model}, batch {batch_size}, "
                f"SLA {target.latency_ms:.0f} ms)"
            ),
        )
    )


if __name__ == "__main__":
    study(sys.argv[1] if len(sys.argv) > 1 else "dlrm-rmc1")
