"""Quickstart: run recommendation inference and tune the scheduler.

This example walks through the three layers of the library:

1. build a recommendation model from the zoo and run a real (NumPy) forward
   pass to get click-through-rate predictions;
2. inspect the model's performance profile (operator breakdown, roofline
   placement) on a server CPU;
3. let DeepRecSched tune the per-request batch size against the model's SLA
   and compare the resulting throughput with the static production baseline.

Run with::

    python examples/quickstart.py
"""

from repro import DeepRecSched, SLATier, get_model
from repro.execution import build_cpu_engine, compute_breakdown
from repro.hardware import RooflineModel, skylake


def run_inference() -> None:
    """Score a batch of candidate items with DLRM-RMC1."""
    model = get_model("dlrm-rmc1", rng=42)
    batch = model.sample_batch(batch_size=8, rng=7)
    ctr = model.predict_ctr(batch)
    print("== Inference ==")
    print(f"model: {model.name}, batch of {batch.batch_size} candidate items")
    print("click-through-rate predictions:", [round(float(p), 4) for p in ctr])
    print()


def inspect_performance() -> None:
    """Show where the model's time goes and where it sits on the roofline."""
    engine = build_cpu_engine("dlrm-rmc1", "broadwell")
    breakdown = compute_breakdown(engine, batch_size=64)
    print("== Operator breakdown at batch 64 (Broadwell) ==")
    for category, fraction in sorted(
        breakdown.fractions.items(), key=lambda item: -item[1]
    ):
        print(f"  {category.value:10s} {fraction * 100:5.1f}%")
    roofline = RooflineModel(skylake())
    intensity = engine.model.operational_intensity(64)
    print(
        f"operational intensity {intensity:.2f} FLOPs/byte vs ridge point "
        f"{roofline.ridge_point:.1f} -> "
        f"{'memory' if roofline.is_memory_bound(intensity) else 'compute'}-bound"
    )
    print()


def tune_scheduler() -> None:
    """Compare the static baseline with DeepRecSched-CPU at the medium SLA."""
    scheduler = DeepRecSched(
        "dlrm-rmc1",
        cpu_platform="skylake",
        gpu_platform=None,
        num_queries=300,
        capacity_iterations=4,
        seed=1,
    )
    baseline = scheduler.baseline(SLATier.MEDIUM)
    tuned = scheduler.optimize_cpu(SLATier.MEDIUM)
    print("== DeepRecSched-CPU vs static baseline (medium SLA) ==")
    print(f"baseline: batch {baseline.batch_size:4d} -> {baseline.qps:8.1f} QPS")
    print(f"tuned:    batch {tuned.batch_size:4d} -> {tuned.qps:8.1f} QPS")
    print(f"speedup:  {tuned.qps / baseline.qps:.2f}x")


if __name__ == "__main__":
    run_inference()
    inspect_performance()
    tune_scheduler()
